#include "cosr/storage/extent_set.h"

#include <algorithm>

namespace cosr {

// Intervals are disjoint, non-abutting, and ascending, so offsets *and*
// ends are strictly increasing: both binary searches below are valid.

void ExtentSet::Add(const Extent& e) {
  if (e.empty()) return;
  std::uint64_t new_offset = e.offset;
  std::uint64_t new_end = e.end();

  // First interval that could merge: the earliest one ending at or after
  // new_offset (overlap or abutment from the left).
  auto first = std::lower_bound(
      intervals_.begin(), intervals_.end(), new_offset,
      [](const Interval& iv, std::uint64_t value) { return iv.end < value; });
  // Absorb every interval that overlaps or abuts [new_offset, new_end).
  auto last = first;
  while (last != intervals_.end() && last->offset <= new_end) {
    new_offset = std::min(new_offset, last->offset);
    new_end = std::max(new_end, last->end);
    total_length_ -= last->end - last->offset;
    ++last;
  }
  if (first == last) {
    intervals_.insert(first, Interval{new_offset, new_end});
  } else {
    // Reuse the first absorbed slot; drop the rest with one memmove.
    first->offset = new_offset;
    first->end = new_end;
    intervals_.erase(first + 1, last);
  }
  total_length_ += new_end - new_offset;
}

bool ExtentSet::Intersects(const Extent& e) const {
  if (e.empty() || intervals_.empty()) return false;
  // First interval ending strictly after e.offset; it is the only candidate
  // that can reach into [e.offset, e.end()).
  auto it = std::upper_bound(
      intervals_.begin(), intervals_.end(), e.offset,
      [](std::uint64_t value, const Interval& iv) { return value < iv.end; });
  return it != intervals_.end() && it->offset < e.end();
}

bool ExtentSet::IntersectsAnySorted(const std::vector<Extent>& sorted) const {
  if (sorted.empty() || intervals_.empty()) return false;
  // Skip intervals entirely below the batch, then sweep both sequences.
  auto it = std::upper_bound(intervals_.begin(), intervals_.end(),
                             sorted.front().offset,
                             [](std::uint64_t value, const Interval& iv) {
                               return value < iv.end;
                             });
  std::size_t i = 0;
  while (it != intervals_.end() && i < sorted.size()) {
    if (it->end <= sorted[i].offset) {
      ++it;
    } else if (sorted[i].end() <= it->offset) {
      ++i;
    } else if (sorted[i].empty()) {
      ++i;  // zero-length extents intersect nothing
    } else {
      return true;
    }
  }
  return false;
}

bool ExtentSet::Contains(std::uint64_t address) const {
  return Intersects(Extent{address, 1});
}

void ExtentSet::Clear() {
  intervals_.clear();
  total_length_ = 0;
}

std::vector<Extent> ExtentSet::ToVector() const {
  std::vector<Extent> result;
  result.reserve(intervals_.size());
  for (const Interval& iv : intervals_) {
    result.push_back(Extent{iv.offset, iv.end - iv.offset});
  }
  return result;
}

}  // namespace cosr
