#ifndef COSR_STORAGE_CHECKPOINT_MANAGER_H_
#define COSR_STORAGE_CHECKPOINT_MANAGER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "cosr/storage/extent.h"
#include "cosr/storage/extent_set.h"

namespace cosr {

class CheckpointManager;

/// How the storage layer hands checkpoint completions to the durability
/// tier without depending on it: the MoveLog implements this, appending a
/// checkpoint record and issuing the log's one Sync(). `seq` is the
/// manager's checkpoint count *after* the completing checkpoint, so the
/// first checkpoint logs seq 1.
class CheckpointDurabilityLog {
 public:
  virtual ~CheckpointDurabilityLog() = default;
  virtual void LogCheckpoint(std::uint64_t seq) = 0;
};

/// The Lemma 3.2 batch rules, shared by every surface that applies a move
/// batch under a manager (AddressSpace's managed engines and the shard-
/// scoped SubSpaceView): every target must be disjoint from every batch
/// source and from every region frozen before the batch. Sorts both
/// vectors by offset in place (they are scratch buffers at every call
/// site) and CHECK-fails on the first violation. One sorted sweep plus
/// one merged frozen sweep — no per-move probes.
void CheckMoveBatchDurability(std::vector<Extent>& sources,
                              std::vector<Extent>& targets,
                              const CheckpointManager& manager);

/// The durability model of Section 3.1. When an object is moved or deleted,
/// its old location is *frozen*: the logical-to-physical map naming that
/// location has not yet been persisted, so the bytes there must survive
/// until the next checkpoint. A checkpoint persists the map and releases
/// every location frozen before it.
///
/// Attached to an AddressSpace, this manager turns Lemma 3.2 (phase moves
/// are nonoverlapping) into an enforced runtime property: any write into a
/// frozen region aborts the process.
///
/// Thread-compatible: scope one manager to one shard and drive it from
/// that shard's owning thread only (the sharded facades construct exactly
/// this shape); never share a manager across concurrently-running shards.
class CheckpointManager {
 public:
  CheckpointManager() = default;
  CheckpointManager(const CheckpointManager&) = delete;
  CheckpointManager& operator=(const CheckpointManager&) = delete;

  /// Records that `e` was freed (object deleted, or moved away).
  void NoteFreed(const Extent& e) { frozen_.Add(e); }

  /// Whether the whole extent may be written right now.
  bool IsWritable(const Extent& e) const { return !frozen_.Intersects(e); }

  /// Completes a checkpoint: all previously frozen regions become writable.
  /// If a durability log is attached, the checkpoint record lands (and the
  /// log's GroupCommitPolicy decides whether it is synced right away)
  /// before the hook observes the new sequence number. With the default
  /// sync-every-checkpoint policy a hook that snapshots state always
  /// snapshots a durable point; under a coalescing policy the point is a
  /// legal recovery landing spot that becomes durable at the group's sync.
  void Checkpoint() {
    frozen_.Clear();
    ++checkpoint_count_;
    if (durability_log_ != nullptr) {
      durability_log_->LogCheckpoint(checkpoint_count_);
    }
    if (checkpoint_hook_) checkpoint_hook_(checkpoint_count_);
  }

  /// Attaches the durability tier's log (nullptr detaches). Not owned.
  void AttachDurabilityLog(CheckpointDurabilityLog* log) {
    durability_log_ = log;
  }

  /// Synchronous observer fired inside Checkpoint() after the durability
  /// record is down. Checkpoints happen MID-request (mid-flush), so a
  /// poll-after-request can never capture checkpoint-time state — the fuzz
  /// harness snapshots its expected recovery image from this hook.
  void SetCheckpointHook(std::function<void(std::uint64_t)> hook) {
    checkpoint_hook_ = std::move(hook);
  }

  std::uint64_t checkpoint_count() const { return checkpoint_count_; }
  std::uint64_t frozen_volume() const { return frozen_.total_length(); }
  const ExtentSet& frozen() const { return frozen_; }

 private:
  ExtentSet frozen_;
  std::uint64_t checkpoint_count_ = 0;
  CheckpointDurabilityLog* durability_log_ = nullptr;
  std::function<void(std::uint64_t)> checkpoint_hook_;
};

}  // namespace cosr

#endif  // COSR_STORAGE_CHECKPOINT_MANAGER_H_
