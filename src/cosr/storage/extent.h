#ifndef COSR_STORAGE_EXTENT_H_
#define COSR_STORAGE_EXTENT_H_

#include <cstdint>
#include <string>

namespace cosr {

/// A half-open address range [offset, offset + length) in the storage array.
struct Extent {
  std::uint64_t offset = 0;
  std::uint64_t length = 0;

  std::uint64_t end() const { return offset + length; }
  bool empty() const { return length == 0; }

  bool Overlaps(const Extent& other) const {
    return offset < other.end() && other.offset < end();
  }
  bool Contains(std::uint64_t address) const {
    return address >= offset && address < end();
  }

  friend bool operator==(const Extent& a, const Extent& b) {
    return a.offset == b.offset && a.length == b.length;
  }
};

inline std::string ToString(const Extent& e) {
  return "[" + std::to_string(e.offset) + "," + std::to_string(e.end()) + ")";
}

}  // namespace cosr

#endif  // COSR_STORAGE_EXTENT_H_
