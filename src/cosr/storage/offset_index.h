#ifndef COSR_STORAGE_OFFSET_INDEX_H_
#define COSR_STORAGE_OFFSET_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "cosr/common/types.h"

namespace cosr {

/// Ordered (offset -> ObjectId) index of the flat AddressSpace engine: a
/// B-tree-flavored paged sorted vector. Entries live in small sorted pages;
/// a flat array of page minima locates the target page with one binary
/// search over contiguous integers, a second binary search lands inside a
/// ~2 KiB page, and an insert/erase memmoves at most one page. Chosen over
/// std::map (pointer-chasing red-black tree) and a skip structure (extra
/// per-node pointers, no cache density) — bench/exp_address_space.cc
/// measures the resulting engine against the map engine.
///
/// Pages split when full and are dropped when empty; deletions in between
/// may leave pages underfull, which costs memory slack but never asymptotic
/// time (the minima array stays one entry per page).
class OffsetIndex {
 public:
  struct Entry {
    std::uint64_t offset = 0;
    ObjectId id = kInvalidObjectId;
  };

  /// The entries adjacent to a just-inserted entry (copied at insertion
  /// time, excluding the new entry itself). The caller runs its
  /// disjointness checks against these without a second search.
  struct Neighbors {
    Entry pred;
    Entry succ;
    bool has_pred = false;
    bool has_succ = false;
  };

  /// Inserts (offset, id) and reports the resulting neighbors.
  Neighbors Insert(std::uint64_t offset, ObjectId id);

  /// Removes the entry at exactly `offset`; returns false when absent.
  bool Erase(std::uint64_t offset);

  /// The entry with the largest offset, or nullptr when empty.
  const Entry* Last() const {
    return pages_.empty() ? nullptr : &pages_.back().entries.back();
  }

  /// The entry with the largest offset strictly below `limit`, or nullptr
  /// when none exists. Two binary searches, like FindPage + an in-page
  /// probe; backs Space::footprint_below.
  const Entry* LastBefore(std::uint64_t limit) const;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  void Clear();

  /// Visits every entry in ascending offset order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Page& page : pages_) {
      for (const Entry& entry : page.entries) fn(entry);
    }
  }

 private:
  // 128 16-byte entries = 2 KiB per page: large enough that the minima
  // array stays tiny, small enough that an insertion memmove is a
  // cache-resident operation.
  static constexpr std::size_t kPageCapacity = 128;

  struct Page {
    std::vector<Entry> entries;
  };

  /// Index of the page whose range covers `offset` (the last page whose
  /// minimum is <= offset, clamped to page 0).
  std::size_t FindPage(std::uint64_t offset) const;

  void Split(std::size_t page_index);

  std::vector<Page> pages_;
  std::vector<std::uint64_t> page_min_;  // pages_[i].entries.front().offset
  std::size_t size_ = 0;
};

}  // namespace cosr

#endif  // COSR_STORAGE_OFFSET_INDEX_H_
