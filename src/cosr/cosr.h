#ifndef COSR_COSR_H_
#define COSR_COSR_H_

/// Umbrella header for the cost-oblivious storage reallocation library.
/// Include individual headers for faster builds; include this for
/// exploration and examples.
///
/// Reproduction of Bender, Farach-Colton, Fekete, Fineman, Gilbert:
/// "Cost-Oblivious Storage Reallocation", PODS 2014 (arXiv:1404.2019).

#include "cosr/alloc/best_fit_allocator.h"    // IWYU pragma: export
#include "cosr/alloc/buddy_allocator.h"       // IWYU pragma: export
#include "cosr/alloc/first_fit_allocator.h"   // IWYU pragma: export
#include "cosr/alloc/free_list.h"             // IWYU pragma: export
#include "cosr/common/check.h"                // IWYU pragma: export
#include "cosr/common/math_util.h"            // IWYU pragma: export
#include "cosr/common/random.h"               // IWYU pragma: export
#include "cosr/common/status.h"               // IWYU pragma: export
#include "cosr/common/types.h"                // IWYU pragma: export
#include "cosr/core/checkpointed_reallocator.h"   // IWYU pragma: export
#include "cosr/core/cost_oblivious_reallocator.h" // IWYU pragma: export
#include "cosr/core/deamortized_reallocator.h"    // IWYU pragma: export
#include "cosr/core/defragmenter.h"           // IWYU pragma: export
#include "cosr/core/size_class.h"             // IWYU pragma: export
#include "cosr/cost/cost_battery.h"           // IWYU pragma: export
#include "cosr/cost/cost_function.h"          // IWYU pragma: export
#include "cosr/db/block_translation_layer.h"  // IWYU pragma: export
#include "cosr/durability/crash_fuzz.h"       // IWYU pragma: export
#include "cosr/durability/durability_hub.h"   // IWYU pragma: export
#include "cosr/durability/fault_injector.h"   // IWYU pragma: export
#include "cosr/durability/log_record.h"       // IWYU pragma: export
#include "cosr/durability/log_sink.h"         // IWYU pragma: export
#include "cosr/durability/move_log.h"         // IWYU pragma: export
#include "cosr/durability/recovery_manager.h" // IWYU pragma: export
#include "cosr/metrics/cost_meter.h"          // IWYU pragma: export
#include "cosr/metrics/latency_profile.h"     // IWYU pragma: export
#include "cosr/metrics/run_harness.h"         // IWYU pragma: export
#include "cosr/realloc/compacting_oracle.h"   // IWYU pragma: export
#include "cosr/realloc/factory.h"             // IWYU pragma: export
#include "cosr/realloc/logging_compacting_reallocator.h"  // IWYU pragma: export
#include "cosr/realloc/packed_memory_array.h"  // IWYU pragma: export
#include "cosr/realloc/reallocator.h"         // IWYU pragma: export
#include "cosr/realloc/size_class_reallocator.h"  // IWYU pragma: export
#include "cosr/service/concurrent_sharded_reallocator.h"  // IWYU pragma: export
#include "cosr/service/routing.h"             // IWYU pragma: export
#include "cosr/service/shard_stats.h"         // IWYU pragma: export
#include "cosr/service/sharded_reallocator.h" // IWYU pragma: export
#include "cosr/service/sub_space_view.h"      // IWYU pragma: export
#include "cosr/storage/address_space.h"       // IWYU pragma: export
#include "cosr/storage/checkpoint_manager.h"  // IWYU pragma: export
#include "cosr/storage/offset_index.h"        // IWYU pragma: export
#include "cosr/storage/simulated_disk.h"      // IWYU pragma: export
#include "cosr/viz/flush_tracer.h"            // IWYU pragma: export
#include "cosr/viz/layout_renderer.h"         // IWYU pragma: export
#include "cosr/workload/adversary.h"          // IWYU pragma: export
#include "cosr/workload/trace.h"              // IWYU pragma: export
#include "cosr/workload/workload_generator.h" // IWYU pragma: export

#endif  // COSR_COSR_H_
