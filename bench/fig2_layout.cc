// Figure 2 — the layout of the data structure: per size class a payload
// segment (light gray in the paper; objects here) followed by a buffer
// segment (dark gray; 'b' on the ruler), with eps' = 1/2. Rendered from a
// live CostObliviousReallocator.

#include <cstdio>

#include "bench_util.h"
#include "cosr/storage/address_space.h"
#include "cosr/common/random.h"
#include "cosr/core/cost_oblivious_reallocator.h"
#include "cosr/viz/layout_renderer.h"

namespace cosr {
namespace {

void Run() {
  bench::Banner("Figure 2: payload and buffer segments (eps' = 1/2)",
                "region i = payload segment (class-i objects only) followed "
                "by a buffer segment (classes <= i)");
  AddressSpace space;
  CostObliviousReallocator realloc(&space,
                                   CostObliviousReallocator::Options{0.5});
  Rng rng(2014);
  ObjectId id = 1;
  for (int i = 0; i < 60; ++i) {
    (void)realloc.Insert(id++, rng.UniformRange(1, 64));
  }
  std::printf("\nobjects (letters) over the address space; ruler: p = payload "
              "segment, b = buffer segment, | = region start\n\n%s\n",
              RenderLayout(realloc, space, 96).c_str());
  std::printf("\nper-region accounting:\n");
  bench::Table table({"size class", "sizes", "payload cap", "buffer cap",
                      "buffer used", "payload objects"});
  for (int i = 1; i <= realloc.max_size_class(); ++i) {
    const Region& r = realloc.region(i);
    if (r.payload_capacity + r.buffer_capacity == 0) continue;
    table.AddRow({std::to_string(i),
                  "[" + std::to_string(1ull << (i - 1)) + "," +
                      std::to_string(1ull << i) + ")",
                  std::to_string(r.payload_capacity),
                  std::to_string(r.buffer_capacity),
                  std::to_string(r.buffer_used),
                  std::to_string(r.payload_objects.size())});
  }
  table.Print();
  bench::Verdict(realloc.CheckInvariants().ok(),
                 "Invariants 2.2-2.4 hold on the rendered state");
}

}  // namespace
}  // namespace cosr

int main() {
  cosr::Run();
  return 0;
}
