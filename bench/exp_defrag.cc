// E5 — Theorem 2.7: cost-oblivious defragmentation sorts arbitrary objects
// in (1+eps)V + delta working space with O((1/eps) log(1/eps)) amortized
// moves per object, vs the naive defragmenter's 2 moves per object in a
// full 2V of space.

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "cosr/common/math_util.h"
#include "cosr/common/random.h"
#include "cosr/core/defragmenter.h"
#include "cosr/storage/address_space.h"

namespace cosr {
namespace {

std::vector<ObjectId> MakeFragmentedLayout(AddressSpace* space,
                                           std::size_t count,
                                           std::uint64_t max_size, double eps,
                                           std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint64_t> sizes(count);
  std::uint64_t volume = 0;
  for (auto& s : sizes) {
    s = rng.UniformRange(1, max_size);
    volume += s;
  }
  const std::uint64_t arena = FloorScale(eps, volume) + volume;
  std::uint64_t slack_left = arena - volume;
  std::uint64_t cursor = 0;
  std::vector<ObjectId> ids;
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t gap =
        slack_left > 0 ? rng.UniformU64(slack_left + 1) / count : 0;
    slack_left -= gap;
    cursor += gap;
    space->Place(static_cast<ObjectId>(i + 1), Extent{cursor, sizes[i]});
    cursor += sizes[i];
    ids.push_back(static_cast<ObjectId>(i + 1));
  }
  return ids;
}

void Run() {
  bench::Banner("E5: cost-oblivious defragmentation (Theorem 2.7)",
                "sorts with space <= (1+eps)V + delta and O((1/eps)log(1/eps)) "
                "amortized moves per object");
  auto less = [](ObjectId a, ObjectId b) { return a < b; };
  bench::Table table({"n", "eps", "algorithm", "moves/object",
                      "peak space / V", "space bound / V", "within bound"});
  bool all_ok = true;
  for (const std::size_t n : {256u, 1024u, 4096u}) {
    for (const double eps : {0.5, 0.25, 0.125}) {
      Defragmenter::Stats stats;
      {
        AddressSpace space;
        auto ids = MakeFragmentedLayout(&space, n, 128, eps, n);
        Defragmenter::Options options;
        options.epsilon = eps;
        const Status status = Defragmenter::Sort(&space, ids, less, options,
                                                 &stats);
        if (!status.ok()) {
          std::printf("SORT FAILED: %s\n", status.ToString().c_str());
          all_ok = false;
          continue;
        }
      }
      const bool within = stats.max_footprint <= stats.arena_limit;
      all_ok &= within;
      const double v = static_cast<double>(stats.volume);
      table.AddRow({std::to_string(n), bench::Fmt(eps, 3), "cost-oblivious",
                    bench::Fmt(static_cast<double>(stats.total_moves) /
                                   static_cast<double>(n),
                               2),
                    bench::Fmt(static_cast<double>(stats.max_footprint) / v),
                    bench::Fmt(static_cast<double>(stats.arena_limit) / v),
                    within ? "yes" : "NO"});
    }
    // Naive comparison at this n.
    Defragmenter::Stats naive;
    AddressSpace space;
    auto ids = MakeFragmentedLayout(&space, n, 128, 0.25, n);
    if (NaiveDefragSort(&space, ids, less, &naive).ok()) {
      table.AddRow({std::to_string(n), "-", "naive (2V space)",
                    bench::Fmt(static_cast<double>(naive.total_moves) /
                                   static_cast<double>(n),
                               2),
                    bench::Fmt(static_cast<double>(naive.max_footprint) /
                               static_cast<double>(naive.volume)),
                    "2.000", "yes"});
    }
  }
  table.Print();
  bench::Verdict(all_ok,
                 "space never exceeds (1+eps)V + delta; moves/object grows "
                 "like (1/eps)log(1/eps) as eps shrinks, vs 2 moves at 2V "
                 "for the naive method");
}

}  // namespace
}  // namespace cosr

int main() {
  cosr::Run();
  return 0;
}
