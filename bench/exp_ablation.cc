// Ablations of the design choices DESIGN.md calls out:
//  (a) the buffer placement rule — the paper sends an update to the
//      earliest buffer j >= its class; restricting updates to their own
//      class's buffer starves small classes (whose buffers round to zero)
//      and multiplies flushes and reallocation cost;
//  (b) the deamortized work factor — the (work_factor/eps)*w work share per
//      update trades worst-case op cost against flush latency (how long a
//      flush stays open, i.e. how much log space and staleness it incurs).

#include <cstdio>

#include "bench_util.h"
#include "cosr/storage/address_space.h"
#include "cosr/core/cost_oblivious_reallocator.h"
#include "cosr/core/deamortized_reallocator.h"
#include "cosr/cost/cost_battery.h"
#include "cosr/metrics/run_harness.h"
#include "cosr/storage/checkpoint_manager.h"
#include "cosr/workload/workload_generator.h"

namespace cosr {
namespace {

void BufferSpillAblation() {
  std::printf("\n-- (a) buffer placement rule --\n");
  CostBattery battery = MakeDefaultBattery();
  Trace trace = MakeChurnTrace({.operations = 20000,
                                .target_live_volume = 1u << 20,
                                .min_size = 1,
                                .max_size = 2048,
                                .seed = 21});
  bench::Table table({"placement rule", "flushes", "moves/op",
                      "linear realloc ratio", "max footprint/V"});
  double spill_ratio = 0, no_spill_ratio = 0;
  for (const bool spill : {true, false}) {
    AddressSpace space;
    CostObliviousReallocator::Options options;
    options.epsilon = 0.25;
    options.spill_to_higher_buffers = spill;
    CostObliviousReallocator realloc(&space, options);
    RunOptions run_options;
    run_options.min_volume_for_ratio = 1u << 18;
    RunReport report = RunTrace(realloc, space, trace, battery, run_options);
    const double ratio = report.function("linear")->realloc_ratio;
    (spill ? spill_ratio : no_spill_ratio) = ratio;
    table.AddRow({spill ? "earliest j >= class (paper)" : "own class only",
                  std::to_string(report.flushes),
                  bench::Fmt(static_cast<double>(report.moves) /
                                 static_cast<double>(report.operations),
                             2),
                  bench::Fmt(ratio, 2),
                  bench::Fmt(report.max_footprint_ratio)});
  }
  table.Print();
  bench::Verdict(no_spill_ratio > 1.5 * spill_ratio,
                 "upward spilling is load-bearing: without it small classes "
                 "flush constantly and the cost ratio inflates");
}

void WorkFactorAblation() {
  std::printf("\n-- (b) deamortized work factor --\n");
  CostBattery battery = MakeDefaultBattery();
  Trace trace = MakeChurnTrace({.operations = 20000,
                                .target_live_volume = 1u << 20,
                                .min_size = 1,
                                .max_size = 2048,
                                .seed = 22});
  bench::Table table({"work factor c (work = (c/eps)w)", "worst op volume",
                      "worst op cost (linear)", "flushes",
                      "linear realloc ratio"});
  std::uint64_t previous_worst = ~0ull;
  bool monotone = true;
  for (const double factor : {2.0, 4.0, 8.0, 16.0}) {
    CheckpointManager manager;
    AddressSpace space(&manager);
    DeamortizedReallocator::Options options;
    options.epsilon = 0.25;
    options.work_factor = factor;
    DeamortizedReallocator realloc(&space, options);
    RunReport report = RunTrace(realloc, space, trace, battery);
    table.AddRow({bench::Fmt(factor, 0),
                  std::to_string(realloc.max_op_moved_volume()),
                  bench::Fmt(report.function("linear")->max_op_cost, 0),
                  std::to_string(report.flushes),
                  bench::Fmt(report.function("linear")->realloc_ratio, 2)});
    // Larger factor => more volume may move in one op (worse tail).
    if (previous_worst != ~0ull &&
        realloc.max_op_moved_volume() < previous_worst / 2) {
      monotone = false;
    }
    previous_worst = realloc.max_op_moved_volume();
  }
  table.Print();
  bench::Verdict(monotone,
                 "the work factor dials worst-case op volume against flush "
                 "duration; the paper's 4/eps sits in the regime where the "
                 "log provably drains before the tail refills (Lemma 3.4)");
}

}  // namespace
}  // namespace cosr

int main() {
  cosr::bench::Banner("Ablations: buffer spill rule and deamortized work factor",
                      "design choices behind Lemma 2.6's charging argument "
                      "and Lemma 3.4's drain guarantee");
  cosr::BufferSpillAblation();
  cosr::WorkFactorAblation();
  return 0;
}
