// E11 — the related-work comparison: sparse tables (packed-memory arrays)
// also solve storage reallocation, but maintain the objects in id order —
// "which makes the problem harder and the reallocation cost
// correspondingly larger" (paper, related work). On a uniform-size random-
// rank workload the PMA pays Θ(log² n) moves per update while the
// unordered reallocators pay O(1)-ish — the price of order.

#include <cmath>
#include <cstdio>
#include <set>

#include "bench_util.h"
#include "cosr/common/random.h"
#include "cosr/core/cost_oblivious_reallocator.h"
#include "cosr/cost/cost_battery.h"
#include "cosr/metrics/cost_meter.h"
#include "cosr/realloc/packed_memory_array.h"
#include "cosr/realloc/size_class_reallocator.h"
#include "cosr/storage/address_space.h"

namespace cosr {
namespace {

struct Result {
  double moves_per_op = 0;
  double footprint_ratio = 0;
  bool ordered = false;
};

Result RunUnitChurn(Reallocator& realloc, AddressSpace& space,
                    std::uint64_t n, std::uint64_t seed) {
  CostBattery battery = MakeDefaultBattery();
  CostMeter meter(&battery);
  space.AddListener(&meter);
  Rng rng(seed);
  std::set<ObjectId> live;
  std::uint64_t ops = 0;
  // Grow to n, then churn n more updates at steady state.
  while (live.size() < n) {
    ObjectId id = rng.UniformRange(1, 1u << 24);
    while (live.count(id) > 0) ++id;
    if (realloc.Insert(id, 1).ok()) live.insert(id);
    ++ops;
  }
  for (std::uint64_t i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.5) && !live.empty()) {
      auto it = live.begin();
      std::advance(it, rng.UniformU64(live.size()));
      (void)realloc.Delete(*it);
      live.erase(it);
    } else {
      ObjectId id = rng.UniformRange(1, 1u << 24);
      while (live.count(id) > 0) ++id;
      (void)realloc.Insert(id, 1).ok();
      live.insert(id);
    }
    ++ops;
  }
  realloc.Quiesce();
  Result result;
  result.moves_per_op =
      static_cast<double>(meter.moves()) / static_cast<double>(ops);
  result.footprint_ratio = static_cast<double>(realloc.reserved_footprint()) /
                           static_cast<double>(realloc.volume());
  // Order check: is the physical layout sorted by id?
  result.ordered = true;
  ObjectId previous = 0;
  for (const auto& [id, extent] : space.Snapshot()) {
    if (id < previous) result.ordered = false;
    previous = id;
  }
  space.RemoveListener(&meter);
  return result;
}

void Run() {
  bench::Banner(
      "E11: the price of order preservation (related work: sparse tables)",
      "order-maintaining reallocation (packed-memory array) pays "
      "Theta(log^2 n) moves per update; unordered reallocation pays O(1)");
  bench::Table table({"n", "structure", "keeps order", "moves/op",
                      "log2(n)^2 (reference)", "footprint/V"});
  bool separation = true;
  for (const std::uint64_t n : {1000u, 4000u, 16000u}) {
    const double reference =
        std::log2(static_cast<double>(n)) * std::log2(static_cast<double>(n));
    {
      AddressSpace space;
      PackedMemoryArray pma(&space);
      Result r = RunUnitChurn(pma, space, n, n);
      separation &= r.ordered;
      separation &= r.moves_per_op > 3.0;  // clearly super-constant
      table.AddRow({std::to_string(n), "pma (ordered)",
                    r.ordered ? "yes" : "NO", bench::Fmt(r.moves_per_op, 2),
                    bench::Fmt(reference, 0),
                    bench::Fmt(r.footprint_ratio, 2)});
    }
    {
      AddressSpace space;
      SizeClassReallocator unordered(&space);
      Result r = RunUnitChurn(unordered, space, n, n);
      separation &= r.moves_per_op < 3.0;
      table.AddRow({std::to_string(n), "size-class (unordered)",
                    r.ordered ? "yes" : "no", bench::Fmt(r.moves_per_op, 2),
                    "-", bench::Fmt(r.footprint_ratio, 2)});
    }
    {
      AddressSpace space;
      CostObliviousReallocator unordered(&space);
      Result r = RunUnitChurn(unordered, space, n, n);
      table.AddRow({std::to_string(n), "cost-oblivious (unordered)",
                    r.ordered ? "yes" : "no", bench::Fmt(r.moves_per_op, 2),
                    "-", bench::Fmt(r.footprint_ratio, 2)});
    }
  }
  table.Print();
  bench::Verdict(separation,
                 "the PMA maintains sorted order at polylog moves per "
                 "update; dropping the order constraint (as the paper does) "
                 "collapses the move count — exactly the related-work claim");
}

}  // namespace
}  // namespace cosr

int main() {
  cosr::Run();
  return 0;
}
