// E6 — Lemmas 3.1-3.3: under the database durability model, a buffer flush
// completes within O(1/eps) checkpoints, every phase's moves are
// nonoverlapping (enforced by the CheckpointManager — the run would abort
// otherwise), and the in-flush footprint stays (1 + O(eps)) V + O(delta).

#include <cstdio>

#include "bench_util.h"
#include "cosr/core/checkpointed_reallocator.h"
#include "cosr/cost/cost_battery.h"
#include "cosr/metrics/run_harness.h"
#include "cosr/storage/checkpoint_manager.h"
#include "cosr/workload/workload_generator.h"

namespace cosr {
namespace {

void Run() {
  bench::Banner(
      "E6: flushing with checkpoints (Lemmas 3.1-3.3)",
      "O(1/eps) checkpoints per flush; nonoverlapping phase moves; in-flush "
      "space (1+O(eps))V + O(delta)");
  CostBattery battery = MakeDefaultBattery();
  Trace trace = MakeChurnTrace({.operations = 30000,
                                .target_live_volume = 2u << 20,
                                .min_size = 1,
                                .max_size = 2048,
                                .seed = 11});
  const std::uint64_t delta = trace.max_object_size();

  bench::Table table({"eps", "flushes", "max ckpt/flush", "bound 6/eps+4",
                      "total ckpts", "max in-flush space/(V+2delta)"});
  bool all_ok = true;
  for (const double eps : {0.5, 0.25, 0.125, 0.0625}) {
    CheckpointManager manager;
    AddressSpace space(&manager);
    CheckpointedReallocator realloc(&space,
                                    CheckpointedReallocator::Options{eps});
    std::uint64_t max_volume = 0;
    RunReport report = RunTrace(realloc, space, trace, battery);
    max_volume = report.max_volume;
    const double ckpt_bound = 6.0 / eps + 4.0;
    const double space_ratio =
        static_cast<double>(realloc.max_temp_footprint()) /
        (static_cast<double>(max_volume) + 2.0 * static_cast<double>(delta));
    all_ok &= static_cast<double>(realloc.max_checkpoints_per_flush()) <=
              ckpt_bound;
    all_ok &= space_ratio <= 1.0 + 8.0 * eps;
    table.AddRow({bench::Fmt(eps, 4), std::to_string(report.flushes),
                  std::to_string(realloc.max_checkpoints_per_flush()),
                  bench::Fmt(ckpt_bound, 1),
                  std::to_string(report.checkpoints),
                  bench::Fmt(space_ratio)});
  }
  table.Print();
  std::printf(
      "(the run completing at all proves Lemma 3.2: any overlapping move or "
      "write into a freed-but-unckeckpointed region aborts the process)\n");
  bench::Verdict(all_ok,
                 "checkpoints per flush grow like 1/eps and stay under the "
                 "bound; in-flush space within (1+O(eps))V + 2delta");
}

}  // namespace
}  // namespace cosr

int main() {
  cosr::Run();
  return 0;
}
