// E6 — Lemmas 3.1-3.3: under the database durability model, a buffer flush
// completes within O(1/eps) checkpoints, every phase's moves are
// nonoverlapping (enforced by the CheckpointManager — the run would abort
// otherwise), and the in-flush footprint stays (1 + O(eps)) V + O(delta).
//
// Also measures the frozen-region store itself: ExtentSet's sorted-vector
// representation against the original std::map representation (kept below
// as the reference) under a checkpoint-storm access pattern — the
// ROADMAP's "ExtentSet under checkpoint storms" perf rung.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>

#include "bench_util.h"
#include "cosr/common/check.h"
#include "cosr/common/random.h"
#include "cosr/core/checkpointed_reallocator.h"
#include "cosr/cost/cost_battery.h"
#include "cosr/metrics/run_harness.h"
#include "cosr/storage/address_space.h"
#include "cosr/storage/checkpoint_manager.h"
#include "cosr/storage/extent_set.h"
#include "cosr/workload/workload_generator.h"

namespace cosr {
namespace {

/// The pre-refactor ExtentSet: a std::map interval store. Verbatim
/// semantics, kept here as the baseline the sorted-vector representation is
/// measured against.
class LegacyMapExtentSet {
 public:
  void Add(const Extent& e) {
    if (e.empty()) return;
    std::uint64_t new_offset = e.offset;
    std::uint64_t new_end = e.end();
    auto it = intervals_.upper_bound(new_offset);
    if (it != intervals_.begin()) {
      auto prev = std::prev(it);
      if (prev->second >= new_offset) it = prev;
    }
    while (it != intervals_.end() && it->first <= new_end) {
      new_offset = std::min(new_offset, it->first);
      new_end = std::max(new_end, it->second);
      it = intervals_.erase(it);
    }
    intervals_.emplace(new_offset, new_end);
  }

  bool Intersects(const Extent& e) const {
    if (e.empty() || intervals_.empty()) return false;
    auto it = intervals_.upper_bound(e.offset);
    if (it != intervals_.begin()) {
      auto prev = std::prev(it);
      if (prev->second > e.offset) return true;
    }
    return it != intervals_.end() && it->first < e.end();
  }

  void Clear() { intervals_.clear(); }
  std::size_t interval_count() const { return intervals_.size(); }

 private:
  std::map<std::uint64_t, std::uint64_t> intervals_;
};

/// One checkpoint-storm round against any interval-set implementation:
/// `adds` frozen regions sprayed over a window (every move/delete freezes
/// its source), 4x as many writability probes (every write validates), one
/// Clear (the checkpoint). Returns a checksum so the work cannot be
/// optimized away.
template <typename Set>
std::uint64_t StormRound(Set& set, Rng& rng, std::uint64_t adds,
                         std::uint64_t window) {
  std::uint64_t hits = 0;
  for (std::uint64_t i = 0; i < adds; ++i) {
    const std::uint64_t offset = rng.UniformU64(window);
    set.Add(Extent{offset, 1 + rng.UniformU64(64)});
    for (int probe = 0; probe < 4; ++probe) {
      const std::uint64_t p = rng.UniformU64(window);
      hits += set.Intersects(Extent{p, 1 + rng.UniformU64(64)}) ? 1 : 0;
    }
  }
  set.Clear();
  return hits;
}

void RunExtentSetStorm() {
  std::printf(
      "\nExtentSet representation under checkpoint storms (adds + 4x "
      "probes per add, Clear per round):\n");
  bench::Table table({"adds/round", "map Mops/s", "sorted-vec Mops/s",
                      "speedup", "checksum"});
  using Clock = std::chrono::steady_clock;
  for (const std::uint64_t adds : {100ull, 1000ull, 10000ull}) {
    const std::uint64_t window = adds * 64;
    const int rounds = static_cast<int>(2000000 / adds);
    const std::uint64_t total_ops = adds * 5 * static_cast<std::uint64_t>(rounds);

    Rng map_rng(99);
    LegacyMapExtentSet map_set;
    const auto map_start = Clock::now();
    std::uint64_t map_sum = 0;
    for (int r = 0; r < rounds; ++r) {
      map_sum += StormRound(map_set, map_rng, adds, window);
    }
    const double map_secs =
        std::chrono::duration<double>(Clock::now() - map_start).count();

    Rng vec_rng(99);
    ExtentSet vec_set;
    const auto vec_start = Clock::now();
    std::uint64_t vec_sum = 0;
    for (int r = 0; r < rounds; ++r) {
      vec_sum += StormRound(vec_set, vec_rng, adds, window);
    }
    const double vec_secs =
        std::chrono::duration<double>(Clock::now() - vec_start).count();

    // Identical rng streams must see identical interval structure.
    COSR_CHECK_EQ(map_sum, vec_sum);
    const double map_mops = static_cast<double>(total_ops) / map_secs / 1e6;
    const double vec_mops = static_cast<double>(total_ops) / vec_secs / 1e6;
    table.AddRow({std::to_string(adds), bench::Fmt(map_mops, 1),
                  bench::Fmt(vec_mops, 1), bench::Fmt(vec_mops / map_mops, 2),
                  std::to_string(vec_sum)});
  }
  table.Print();
}

void Run() {
  bench::Banner(
      "E6: flushing with checkpoints (Lemmas 3.1-3.3)",
      "O(1/eps) checkpoints per flush; nonoverlapping phase moves; in-flush "
      "space (1+O(eps))V + O(delta)");
  CostBattery battery = MakeDefaultBattery();
  Trace trace = MakeChurnTrace({.operations = 30000,
                                .target_live_volume = 2u << 20,
                                .min_size = 1,
                                .max_size = 2048,
                                .seed = 11});
  const std::uint64_t delta = trace.max_object_size();

  bench::Table table({"eps", "flushes", "max ckpt/flush", "bound 6/eps+4",
                      "total ckpts", "max in-flush space/(V+2delta)"});
  bool all_ok = true;
  for (const double eps : {0.5, 0.25, 0.125, 0.0625}) {
    CheckpointManager manager;
    AddressSpace space(&manager);
    CheckpointedReallocator realloc(&space,
                                    CheckpointedReallocator::Options{eps});
    std::uint64_t max_volume = 0;
    RunReport report = RunTrace(realloc, space, trace, battery);
    max_volume = report.max_volume;
    const double ckpt_bound = 6.0 / eps + 4.0;
    const double space_ratio =
        static_cast<double>(realloc.max_temp_footprint()) /
        (static_cast<double>(max_volume) + 2.0 * static_cast<double>(delta));
    all_ok &= static_cast<double>(realloc.max_checkpoints_per_flush()) <=
              ckpt_bound;
    all_ok &= space_ratio <= 1.0 + 8.0 * eps;
    table.AddRow({bench::Fmt(eps, 4), std::to_string(report.flushes),
                  std::to_string(realloc.max_checkpoints_per_flush()),
                  bench::Fmt(ckpt_bound, 1),
                  std::to_string(report.checkpoints),
                  bench::Fmt(space_ratio)});
  }
  table.Print();
  std::printf(
      "(the run completing at all proves Lemma 3.2: any overlapping move or "
      "write into a freed-but-unckeckpointed region aborts the process)\n");
  bench::Verdict(all_ok,
                 "checkpoints per flush grow like 1/eps and stay under the "
                 "bound; in-flush space within (1+O(eps))V + 2delta");
}

}  // namespace
}  // namespace cosr

int main() {
  cosr::Run();
  cosr::RunExtentSetStorm();
  return 0;
}
