// E7 — Lemma 3.6: the deamortized structure bounds the worst-case
// reallocation cost of a size-w update by O((1/eps) w f(1) + f(delta)),
// while the amortized cost matches the amortized variant. We compare the
// worst single-op cost (tail latency) of the amortized and deamortized
// variants under the same workload.

#include <cstdio>

#include "bench_util.h"
#include "cosr/storage/address_space.h"
#include "cosr/core/checkpointed_reallocator.h"
#include "cosr/core/cost_oblivious_reallocator.h"
#include "cosr/core/deamortized_reallocator.h"
#include "cosr/cost/cost_battery.h"
#include "cosr/metrics/latency_profile.h"
#include "cosr/metrics/run_harness.h"
#include "cosr/storage/checkpoint_manager.h"
#include "cosr/workload/workload_generator.h"

namespace cosr {
namespace {

/// Replays the trace recording per-op linear-f costs.
void Profile(Reallocator& realloc, AddressSpace& space, const Trace& trace,
             LatencyProfile& profile) {
  space.AddListener(&profile);
  for (const Request& r : trace.requests()) {
    profile.BeginOp();
    if (r.type == Request::Type::kInsert) {
      (void)realloc.Insert(r.id, r.size);
    } else {
      (void)realloc.Delete(r.id);
    }
  }
  profile.BeginOp();
  realloc.Quiesce();
  space.RemoveListener(&profile);
}

void Run() {
  bench::Banner(
      "E7: deamortization (Lemma 3.6)",
      "worst-case per-update reallocated volume <= (4/eps) w + delta, so "
      "worst-case cost O((1/eps) w f(1) + f(delta)); amortized unchanged");
  CostBattery battery = MakeDefaultBattery();
  const double eps = 0.25;
  Trace trace = MakeChurnTrace({.operations = 30000,
                                .target_live_volume = 2u << 20,
                                .min_size = 1,
                                .max_size = 2048,
                                .seed = 13});
  const std::uint64_t max_w = trace.max_object_size();

  // Amortized variant.
  AddressSpace amortized_space;
  CostObliviousReallocator amortized(&amortized_space,
                                     CostObliviousReallocator::Options{eps});
  RunReport amortized_report =
      RunTrace(amortized, amortized_space, trace, battery);

  // Deamortized variant.
  CheckpointManager manager;
  AddressSpace deamortized_space(&manager);
  DeamortizedReallocator::Options options;
  options.epsilon = eps;
  options.work_factor = 4.0;
  DeamortizedReallocator deamortized(&deamortized_space, options);
  RunReport deamortized_report =
      RunTrace(deamortized, deamortized_space, trace, battery);

  bench::Table table({"cost f", "amortized: worst op", "deamortized: worst op",
                      "improvement", "amortized ratio", "deamortized ratio"});
  bool improved = true;
  for (std::size_t i = 0; i < battery.size(); ++i) {
    const FunctionReport& a = amortized_report.functions[i];
    const FunctionReport& d = deamortized_report.functions[i];
    if (a.name == "linear" || a.name == "constant") {
      improved &= d.max_op_cost < a.max_op_cost;
    }
    table.AddRow({a.name, bench::Fmt(a.max_op_cost, 0),
                  bench::Fmt(d.max_op_cost, 0),
                  bench::Fmt(a.max_op_cost / std::max(d.max_op_cost, 1.0), 1) +
                      "x",
                  bench::Fmt(a.realloc_ratio, 2),
                  bench::Fmt(d.realloc_ratio, 2)});
  }
  table.Print();

  // The same comparison as a latency distribution (linear f): the body is
  // similar; the deamortized tail is flat.
  auto linear = MakeLinearCost();
  LatencyProfile amortized_profile(linear.get());
  {
    AddressSpace space;
    CostObliviousReallocator fresh(&space,
                                   CostObliviousReallocator::Options{eps});
    Profile(fresh, space, trace, amortized_profile);
  }
  LatencyProfile deamortized_profile(linear.get());
  {
    CheckpointManager fresh_manager;
    AddressSpace space(&fresh_manager);
    DeamortizedReallocator fresh(&space, options);
    Profile(fresh, space, trace, deamortized_profile);
  }
  std::printf("\nper-op cost distribution (linear f):\n");
  bench::Table latency({"variant", "p50", "p90", "p99", "p99.9", "max"});
  const std::pair<const LatencyProfile*, const char*> profiles[] = {
      {&amortized_profile, "amortized"},
      {&deamortized_profile, "deamortized"}};
  for (const auto& [profile, label] : profiles) {
    latency.AddRow({label, bench::Fmt(profile->Percentile(0.50), 0),
                    bench::Fmt(profile->Percentile(0.90), 0),
                    bench::Fmt(profile->Percentile(0.99), 0),
                    bench::Fmt(profile->Percentile(0.999), 0),
                    bench::Fmt(profile->max(), 0)});
  }
  latency.Print();

  const double volume_bound =
      (options.work_factor / eps) * static_cast<double>(max_w) +
      static_cast<double>(deamortized.delta()) + 1;
  std::printf("\nworst per-op moved volume: %llu (bound (4/eps)w + delta = %.0f)\n",
              static_cast<unsigned long long>(
                  deamortized.max_op_moved_volume()),
              volume_bound);
  std::printf("max checkpoints charged to one update: %llu\n",
              static_cast<unsigned long long>(
                  deamortized.max_checkpoints_per_op()));
  const bool volume_ok =
      static_cast<double>(deamortized.max_op_moved_volume()) <= volume_bound;
  bench::Verdict(improved && volume_ok,
                 "deamortized worst-op cost is far below the amortized "
                 "variant's and within the Lemma 3.6 volume bound, at "
                 "similar amortized cost");
}

}  // namespace
}  // namespace cosr

int main() {
  cosr::Run();
  return 0;
}
