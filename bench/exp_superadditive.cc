// E9 — the subadditivity requirement is real. The Lemma 2.6 charging
// argument lets small buffered allocations pay for moving larger objects
// because subadditive f makes large objects the cheapest per unit to move.
// A superadditive f(w) = w^2 inverts that: one size-∆ object repeatedly
// repositioned by flushes that unit-object churn triggers costs ~f(∆) per
// flush against only ~f(1) of new allocation. The same execution priced
// under Fsa members stays O((1/eps) log(1/eps)); under w^2 the ratio grows
// without bound as ∆ grows. Nothing about the run changes — only the
// pricing — which is exactly why the theorem restricts f to Fsa.

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "cosr/storage/address_space.h"
#include "cosr/core/cost_oblivious_reallocator.h"
#include "cosr/cost/cost_battery.h"
#include "cosr/metrics/run_harness.h"
#include "cosr/workload/trace.h"

namespace cosr {
namespace {

/// One size-delta object plus steady unit-object churn: the units fill the
/// buffers, every flush repacks the suffix, and the big object keeps
/// moving as the small classes' segment sizes fluctuate.
Trace MakeBigAndUnitsTrace(std::uint64_t delta, std::uint64_t operations) {
  Trace trace;
  ObjectId next = 1;
  trace.AddInsert(next++, delta);
  std::vector<ObjectId> live;
  const std::size_t steady = 512;
  std::uint64_t toggle = 0x12345678;
  for (std::uint64_t op = 0; op < operations; ++op) {
    toggle = toggle * 6364136223846793005ULL + 1442695040888963407ULL;
    if (live.size() < steady || (toggle >> 33) % 2 == 0) {
      trace.AddInsert(next, 1);
      live.push_back(next++);
    } else {
      const std::size_t k = (toggle >> 17) % live.size();
      trace.AddDelete(live[k]);
      live[k] = live.back();
      live.pop_back();
    }
  }
  return trace;
}

void Run() {
  bench::Banner(
      "E9: subadditivity is required (Section 1, class Fsa)",
      "the O((1/eps)log(1/eps)) guarantee holds for subadditive f only; a "
      "superadditive f(w)=w^2 breaks the charging argument");
  CostBattery battery = MakeBatteryWithQuadratic();
  bench::Table table({"delta", "flushes", "linear ratio", "sqrt ratio",
                      "quadratic ratio (NOT in Fsa)"});
  double first_quadratic = 0;
  double last_quadratic = 0;
  double worst_fsa = 0;
  for (const std::uint64_t delta : {1024u, 4096u, 16384u}) {
    // ops ~ delta^1.5: flushes (one per ~eps*delta of churn) outgrow the
    // big object's own f(delta) allocation, so the superadditive ratio
    // rises ~sqrt(delta) while every Fsa ratio stays ~2/eps.
    const auto operations = static_cast<std::uint64_t>(
        static_cast<double>(delta) * std::sqrt(static_cast<double>(delta)));
    Trace trace = MakeBigAndUnitsTrace(delta, operations);
    AddressSpace space;
    CostObliviousReallocator realloc(&space,
                                     CostObliviousReallocator::Options{0.25});
    RunReport report = RunTrace(realloc, space, trace, battery);
    const double linear = report.function("linear")->realloc_ratio;
    const double sqrt_ratio = report.function("sqrt")->realloc_ratio;
    const double quadratic = report.function("quadratic")->realloc_ratio;
    if (first_quadratic == 0) first_quadratic = quadratic;
    last_quadratic = quadratic;
    worst_fsa = std::max({worst_fsa, linear, sqrt_ratio});
    table.AddRow({std::to_string(delta), std::to_string(report.flushes),
                  bench::Fmt(linear, 2), bench::Fmt(sqrt_ratio, 2),
                  bench::Fmt(quadratic, 2)});
  }
  table.Print();
  const bool shape = last_quadratic > 2.0 * first_quadratic &&
                     last_quadratic > 4.0 * worst_fsa;
  bench::Verdict(shape,
                 "the quadratic ratio keeps growing with delta while every "
                 "Fsa member stays bounded — cost obliviousness is exactly "
                 "as strong as the paper claims, no stronger");
}

}  // namespace
}  // namespace cosr

int main() {
  cosr::Run();
  return 0;
}
