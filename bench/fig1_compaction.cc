// Figure 1 — "Moving previously allocated blocks into holes left by
// deallocations can reduce the footprint of the data in storage."
// Rendered live from the simulator: a no-move allocator accumulates holes;
// moving blocks (here: one compaction pass) shrinks the footprint.

#include <cstdio>

#include "bench_util.h"
#include "cosr/alloc/first_fit_allocator.h"
#include "cosr/realloc/logging_compacting_reallocator.h"
#include "cosr/storage/address_space.h"
#include "cosr/viz/layout_renderer.h"

namespace cosr {
namespace {

void Run() {
  bench::Banner("Figure 1: holes and compaction",
                "moving blocks into deallocation holes reduces the footprint");

  AddressSpace space;
  LoggingCompactingReallocator::Options options;
  options.threshold = 100.0;  // effectively disable auto-compaction
  LoggingCompactingReallocator realloc(&space, options);
  ObjectId id = 1;
  for (const std::uint64_t size : {12u, 7u, 15u, 9u, 14u, 6u, 11u, 10u}) {
    (void)realloc.Insert(id++, size);
  }
  const std::uint64_t full = space.footprint();
  std::printf("\nafter 8 allocations (footprint %llu):\n  %s\n",
              static_cast<unsigned long long>(full),
              RenderSpace(space, full, 84).c_str());

  (void)realloc.Delete(2);  // B
  (void)realloc.Delete(5);  // E
  (void)realloc.Delete(7);  // G
  std::printf(
      "\nafter deleting B, E and G — holes, footprint unchanged (%llu):\n  %s\n",
      static_cast<unsigned long long>(space.footprint()),
      RenderSpace(space, full, 84).c_str());

  // Move the remaining blocks into the holes (one compaction pass).
  std::uint64_t cursor = 0;
  for (const auto& [obj, extent] : space.Snapshot()) {
    if (extent.offset != cursor) space.Move(obj, Extent{cursor, extent.length});
    cursor += extent.length;
  }
  std::printf(
      "\nafter moving blocks into the holes (footprint %llu <- %llu):\n  %s\n",
      static_cast<unsigned long long>(space.footprint()),
      static_cast<unsigned long long>(full),
      RenderSpace(space, full, 84).c_str());
  bench::Verdict(space.footprint() < full,
                 "reallocation recovered the deallocated space");
}

}  // namespace
}  // namespace cosr

int main() {
  cosr::Run();
  return 0;
}
