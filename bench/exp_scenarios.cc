// EXP-SCENARIOS — the standing scenario-diversity battery: every
// reallocator × free-list policy × bin-discipline cell — plus the
// service-layer sharded cells (cost-oblivious behind ShardedReallocator at
// K ∈ {1, 4, 16}) — replayed over every scenario in workload/scenario.h
// (steady churn, ramp-collapse, bimodal sizes, Zipf churn, the
// database-block replay, and the four adversarial traces), recording
// footprint ratios, moved volume, and throughput via RunHarness/CostMeter.
// Writes one JSON row per cell to BENCH_scenarios.json (run from the repo
// root to refresh the committed artifact) and prints a per-scenario table
// plus the bin-discipline verdict the ROADMAP asks for.
//
// Usage: exp_scenarios [--smoke]   (--smoke: ~20x smaller traces for CI)

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <utility>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "cosr/storage/address_space.h"
#include "cosr/common/check.h"
#include "cosr/cost/cost_battery.h"
#include "cosr/metrics/run_harness.h"
#include "cosr/realloc/factory.h"
#include "cosr/service/sharded_reallocator.h"
#include "cosr/storage/checkpoint_manager.h"
#include "cosr/workload/scenario.h"

namespace cosr {
namespace {

using Clock = std::chrono::steady_clock;

/// One reallocator configuration of the battery. `policy`/`discipline` are
/// display labels ("-" where the knob does not exist for the algorithm).
/// Cells with `sharded` set run behind a ShardedReallocator facade of
/// `spec.shard_count` shards — including K=1, so the wrapper itself is a
/// measured battery citizen, not a special case.
struct Cell {
  ReallocatorSpec spec;
  std::string policy;
  std::string discipline;
  bool sharded = false;

  std::string RoutingLabel() const {
    return sharded ? RoutingPolicyName(spec.routing) : "-";
  }

  std::string Label() const {
    std::string label = spec.algorithm;
    if (policy != "-") label += "/" + policy;
    if (discipline != "-") label += "/" + discipline;
    if (sharded) {
      label += "/K" + std::to_string(spec.shard_count) + "-" + RoutingLabel();
    }
    return label;
  }
};

/// Every cell the battery runs. The free-list knobs exist only on the
/// FreeList-backed allocators (first-fit, best-fit): those expand into the
/// full policy × discipline product (mapscan is exact, so the discipline
/// axis collapses to one cell there). "pma" is excluded: the classical
/// sparse table holds uniform-slot objects only and rejects these traces.
std::vector<Cell> MakeCells() {
  std::vector<Cell> cells;
  for (const std::string algorithm : {"first-fit", "best-fit"}) {
    Cell exact;
    exact.spec.algorithm = algorithm;
    exact.spec.free_list_policy = FreeList::Policy::kMapScan;
    exact.policy = "mapscan";
    exact.discipline = "-";
    cells.push_back(exact);
    for (const BinDiscipline discipline :
         {BinDiscipline::kFifo, BinDiscipline::kLifo,
          BinDiscipline::kAddressOrdered}) {
      Cell binned;
      binned.spec.algorithm = algorithm;
      binned.spec.free_list_policy = FreeList::Policy::kBinned;
      binned.spec.discipline = discipline;
      binned.policy = "binned";
      binned.discipline = BinDisciplineName(discipline);
      cells.push_back(binned);
    }
  }
  for (const std::string algorithm :
       {"buddy", "log-compact", "size-class", "oracle", "cost-oblivious",
        "checkpointed", "deamortized"}) {
    Cell cell;
    cell.spec.algorithm = algorithm;
    cell.policy = "-";
    cell.discipline = "-";
    cells.push_back(cell);
  }
  // The service layer: cost-oblivious behind the sharded facade at
  // K ∈ {1, 4, 16} (hash routing; K=1 measures the wrapper itself), plus
  // the size-segregated routing at K=4.
  for (const std::uint32_t shards : {1u, 4u, 16u}) {
    Cell cell;
    cell.spec.algorithm = "cost-oblivious";
    cell.spec.shard_count = shards;
    cell.spec.routing = RoutingPolicy::kHashId;
    cell.policy = "-";
    cell.discipline = "-";
    cell.sharded = true;
    cells.push_back(cell);
  }
  {
    Cell cell;
    cell.spec.algorithm = "cost-oblivious";
    cell.spec.shard_count = 4;
    cell.spec.routing = RoutingPolicy::kSizeClass;
    cell.policy = "-";
    cell.discipline = "-";
    cell.sharded = true;
    cells.push_back(cell);
  }
  return cells;
}

struct Row {
  std::string scenario;
  Cell cell;
  RunReport report;
  double wall_seconds = 0;
  double ops_per_sec = 0;
};

Row RunCell(const Scenario& scenario, const Cell& cell,
            const CostBattery& battery) {
  std::unique_ptr<CheckpointManager> manager;
  if (!cell.sharded &&
      AlgorithmNeedsCheckpointManager(cell.spec.algorithm)) {
    // Sharded cells keep the parent unmanaged: each shard scopes its own.
    manager = std::make_unique<CheckpointManager>();
  }
  AddressSpace space(manager.get());
  std::unique_ptr<Reallocator> realloc;
  if (cell.sharded) {
    // Through ShardedReallocator::Make directly so K=1 still measures the
    // facade (the factory unwraps shard_count == 1 to the bare algorithm).
    ShardedReallocator::Options options;
    options.shard_count = cell.spec.shard_count;
    options.routing = cell.spec.routing;
    std::unique_ptr<ShardedReallocator> sharded;
    COSR_CHECK_OK(
        ShardedReallocator::Make(cell.spec, options, &space, &sharded));
    realloc = std::move(sharded);
  } else {
    COSR_CHECK_OK(MakeReallocator(cell.spec, &space, &realloc));
  }

  RunOptions options;
  // Scale the ratio floor with the trace so collapse phases (the regime the
  // fragmentation and ramp scenarios exist for) still produce samples at
  // smoke sizes, while tiny-structure noise stays excluded.
  options.min_volume_for_ratio = std::min<std::uint64_t>(
      1024, std::max<std::uint64_t>(1, scenario.trace.max_live_volume() / 8));

  Row row;
  row.scenario = scenario.name;
  row.cell = cell;
  const auto start = Clock::now();
  row.report = RunTrace(*realloc, space, scenario.trace, battery, options);
  row.wall_seconds = std::chrono::duration<double>(Clock::now() - start).count();
  row.ops_per_sec =
      static_cast<double>(row.report.operations) / row.wall_seconds;
  return row;
}

void WriteJson(const std::vector<Row>& rows, bool smoke) {
  std::FILE* json = std::fopen("BENCH_scenarios.json", "w");
  if (json == nullptr) {
    std::printf("cannot open BENCH_scenarios.json for writing\n");
    return;
  }
  std::fprintf(json, "{\n  \"schema_version\": 2,\n  \"smoke\": %s,\n",
               smoke ? "true" : "false");
  std::fprintf(json,
               "  \"excluded\": [{\"algorithm\": \"pma\", \"reason\": "
               "\"uniform slot sizes only\"}],\n");
  std::fprintf(json, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    const FunctionReport* linear = row.report.function("linear");
    std::fprintf(
        json,
        "    {\"scenario\": \"%s\", \"algorithm\": \"%s\", "
        "\"policy\": \"%s\", \"discipline\": \"%s\", "
        "\"shards\": %u, \"routing\": \"%s\", "
        "\"operations\": %llu, "
        "\"max_footprint_ratio\": %.4f, \"avg_footprint_ratio\": %.4f, "
        "\"final_footprint_ratio\": %.4f, "
        "\"max_reserved_footprint\": %llu, \"max_volume\": %llu, "
        "\"moves\": %llu, \"bytes_moved\": %llu, \"bytes_placed\": %llu, "
        "\"linear_cost_ratio\": %.4f, \"linear_realloc_ratio\": %.4f, "
        "\"wall_seconds\": %.4f, \"ops_per_sec\": %.0f}%s\n",
        row.scenario.c_str(), row.cell.spec.algorithm.c_str(),
        row.cell.policy.c_str(), row.cell.discipline.c_str(),
        row.cell.sharded ? row.cell.spec.shard_count : 1,
        row.cell.RoutingLabel().c_str(),
        static_cast<unsigned long long>(row.report.operations),
        row.report.max_footprint_ratio, row.report.avg_footprint_ratio,
        row.report.final_footprint_ratio,
        static_cast<unsigned long long>(row.report.max_reserved_footprint),
        static_cast<unsigned long long>(row.report.max_volume),
        static_cast<unsigned long long>(row.report.moves),
        static_cast<unsigned long long>(row.report.bytes_moved),
        static_cast<unsigned long long>(row.report.bytes_placed),
        linear != nullptr ? linear->cost_ratio : 0.0,
        linear != nullptr ? linear->realloc_ratio : 0.0, row.wall_seconds,
        row.ops_per_sec, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("wrote BENCH_scenarios.json (%zu rows)\n", rows.size());
}

struct DisciplineScore {
  double footprint_vs_best = 0;  // mean of (peak ratio / best discipline's)
  double mean_kops = 0;
};

/// Scores the binned first-/best-fit cells per discipline — the numbers the
/// ROADMAP's bin-discipline open item asks for. Peak footprint is
/// normalized against the best discipline of the same (scenario, algorithm)
/// pair, so scenarios where placement is discipline-blind (no gap reuse,
/// e.g. pure ramp phases) contribute 1.0 instead of swamping the mean.
std::map<std::string, DisciplineScore> ScoreDisciplines(
    const std::vector<Row>& rows) {
  std::map<std::string, std::vector<const Row*>> groups;  // scenario|algo
  for (const Row& row : rows) {
    if (row.cell.policy != "binned") continue;
    groups[row.scenario + "|" + row.cell.spec.algorithm].push_back(&row);
  }
  std::map<std::string, DisciplineScore> sum;
  std::map<std::string, int> count;
  for (const auto& [key, group] : groups) {
    double best = 0;
    for (const Row* row : group) {
      if (best == 0 || row->report.max_footprint_ratio < best) {
        best = row->report.max_footprint_ratio;
      }
    }
    for (const Row* row : group) {
      DisciplineScore& score = sum[row->cell.discipline];
      score.footprint_vs_best += row->report.max_footprint_ratio / best;
      score.mean_kops += row->ops_per_sec / 1000.0;
      ++count[row->cell.discipline];
    }
  }
  for (auto& [discipline, score] : sum) {
    score.footprint_vs_best /= count[discipline];
    score.mean_kops /= count[discipline];
  }
  return sum;
}

}  // namespace
}  // namespace cosr

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  cosr::bench::Banner(
      "EXP-SCENARIOS — reallocator x policy x discipline x scenario battery",
      "bin discipline is the placement knob; measure its footprint impact");

  const cosr::ScenarioBatteryOptions options =
      smoke ? cosr::ScenarioBatteryOptions::Smoke()
            : cosr::ScenarioBatteryOptions();
  const std::vector<cosr::Scenario> scenarios =
      cosr::MakeScenarioBattery(options);
  const std::vector<cosr::Cell> cells = cosr::MakeCells();
  const cosr::CostBattery battery = cosr::MakeDefaultBattery();

  std::vector<cosr::Row> rows;
  rows.reserve(scenarios.size() * cells.size());
  for (const cosr::Scenario& scenario : scenarios) {
    std::printf("\n-- %s: %s (%zu requests) --\n", scenario.name.c_str(),
                scenario.description.c_str(), scenario.trace.size());
    cosr::bench::Table table({"cell", "max fp", "avg fp", "final fp",
                              "moves/op", "MiB moved", "kops/s"});
    for (const cosr::Cell& cell : cells) {
      rows.push_back(cosr::RunCell(scenario, cell, battery));
      const cosr::Row& row = rows.back();
      table.AddRow(
          {cell.Label(), cosr::bench::Fmt(row.report.max_footprint_ratio),
           cosr::bench::Fmt(row.report.avg_footprint_ratio),
           cosr::bench::Fmt(row.report.final_footprint_ratio),
           cosr::bench::Fmt(static_cast<double>(row.report.moves) /
                                static_cast<double>(row.report.operations),
                            2),
           cosr::bench::Fmt(static_cast<double>(row.report.bytes_moved) /
                                (1024.0 * 1024.0),
                            1),
           cosr::bench::Fmt(row.ops_per_sec / 1000.0, 0)});
    }
    table.Print();
  }

  const std::map<std::string, cosr::DisciplineScore> scores =
      cosr::ScoreDisciplines(rows);
  std::string best;
  for (const auto& [discipline, score] : scores) {
    if (best.empty() ||
        score.footprint_vs_best < scores.at(best).footprint_vs_best) {
      best = discipline;
    }
  }
  std::printf(
      "\nbinned first-/best-fit discipline scores (footprint normalized to "
      "the per-scenario best):\n");
  for (const auto& [discipline, score] : scores) {
    std::printf("  %-5s peak footprint x%.4f of best, %8.0f kops/s%s\n",
                discipline.c_str(), score.footprint_vs_best, score.mean_kops,
                discipline == best ? "  <- lowest footprint" : "");
  }

  cosr::WriteJson(rows, smoke);
  const bool complete = rows.size() == scenarios.size() * cells.size();
  cosr::bench::Verdict(
      complete,
      "battery complete; lowest normalized peak footprint: " + best + " (x" +
          cosr::bench::Fmt(scores.at(best).footprint_vs_best) + ")");
  return complete ? 0 : 1;
}
