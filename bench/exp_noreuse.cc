// E4 — the introduction's motivation: when allocated blocks cannot move,
// the footprint competitive ratio is Ω(log)-bounded below [Luby et al. 96];
// allowing reallocation collapses it to 1+eps. We drive the classical
// no-move allocators and the reallocators over a fragmentation adversary
// (small survivors pin the footprint after the bulk deletes).

#include <cstdio>

#include "bench_util.h"
#include "cosr/storage/address_space.h"
#include "cosr/alloc/best_fit_allocator.h"
#include "cosr/alloc/buddy_allocator.h"
#include "cosr/alloc/first_fit_allocator.h"
#include "cosr/core/cost_oblivious_reallocator.h"
#include "cosr/cost/cost_battery.h"
#include "cosr/metrics/run_harness.h"
#include "cosr/realloc/logging_compacting_reallocator.h"
#include "cosr/realloc/size_class_reallocator.h"
#include "cosr/workload/adversary.h"

namespace cosr {
namespace {

template <typename Allocator, typename... ExtraArgs>
double FinalRatio(const Trace& trace, const CostBattery& battery,
                  ExtraArgs... extra) {
  AddressSpace space;
  Allocator realloc(&space, extra...);
  RunOptions options;
  options.min_volume_for_ratio = 1;
  RunReport report = RunTrace(realloc, space, trace, battery, options);
  return report.final_footprint_ratio;
}

void Run() {
  bench::Banner(
      "E4: why reallocation — no-move allocators vs reallocators",
      "memory allocation (no moves) has footprint ratio growing with the "
      "size spread; storage reallocation recovers to 1+eps");
  CostBattery battery = MakeDefaultBattery();
  bench::Table table({"large/small spread", "first-fit", "best-fit", "buddy",
                      "log-compact", "size-class", "cost-oblivious"});
  bool separation = true;
  for (const std::uint64_t large : {63u, 255u, 1023u, 4095u}) {
    Trace trace =
        MakeFragmentationTrace(/*pairs=*/512, /*small_size=*/1, large);
    // The classical allocators run map-scan so the reproduction measures
    // the literature's exact first-/best-fit placement rules, not the
    // bin-granular fast path (see src/cosr/alloc/README.md).
    const double first_fit = FinalRatio<FirstFitAllocator>(
        trace, battery, FreeList::Policy::kMapScan);
    const double best_fit = FinalRatio<BestFitAllocator>(
        trace, battery, FreeList::Policy::kMapScan);
    const double buddy = FinalRatio<BuddyAllocator>(trace, battery);
    const double log_compact =
        FinalRatio<LoggingCompactingReallocator>(trace, battery);
    const double size_class =
        FinalRatio<SizeClassReallocator>(trace, battery);
    const double oblivious =
        FinalRatio<CostObliviousReallocator>(trace, battery);
    separation &= first_fit > 8.0 * oblivious;
    separation &= best_fit > 8.0 * oblivious;
    separation &= oblivious < 2.0;
    table.AddRow({std::to_string(large) + ":1", bench::Fmt(first_fit, 1),
                  bench::Fmt(best_fit, 1), bench::Fmt(buddy, 1),
                  bench::Fmt(log_compact, 2), bench::Fmt(size_class, 2),
                  bench::Fmt(oblivious, 2)});
  }
  table.Print();
  std::printf(
      "(final footprint / live volume after the adversary deletes every "
      "large object; survivors are unit objects)\n");
  bench::Verdict(separation,
                 "no-move allocators stay pinned near the peak footprint and "
                 "worsen with the spread; reallocators recover to ~1+eps");
}

}  // namespace
}  // namespace cosr

int main() {
  cosr::Run();
  return 0;
}
