// E10 — google-benchmark microbenchmarks: request throughput of every
// implementation on steady-state churn, plus the core structure across
// epsilons and size spreads. Not a paper table — the practical sanity check
// that the data structure overheads are laptop-friendly.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "cosr/storage/address_space.h"
#include "cosr/alloc/best_fit_allocator.h"
#include "cosr/alloc/buddy_allocator.h"
#include "cosr/alloc/first_fit_allocator.h"
#include "cosr/core/checkpointed_reallocator.h"
#include "cosr/core/cost_oblivious_reallocator.h"
#include "cosr/core/deamortized_reallocator.h"
#include "cosr/realloc/logging_compacting_reallocator.h"
#include "cosr/realloc/size_class_reallocator.h"
#include "cosr/storage/checkpoint_manager.h"
#include "cosr/workload/workload_generator.h"

namespace cosr {
namespace {

/// Map-scan-policy wrappers so BM_Churn can compare the binned free-space
/// index (the allocators' default) against the ordered-map baseline.
struct FirstFitMapScan : FirstFitAllocator {
  explicit FirstFitMapScan(AddressSpace* space)
      : FirstFitAllocator(space, FreeList::Policy::kMapScan) {}
};
struct BestFitMapScan : BestFitAllocator {
  explicit BestFitMapScan(AddressSpace* space)
      : BestFitAllocator(space, FreeList::Policy::kMapScan) {}
};

Trace SharedTrace() {
  return MakeChurnTrace({.operations = 20000,
                         .target_live_volume = 1u << 20,
                         .min_size = 1,
                         .max_size = 1024,
                         .seed = 99});
}

void Replay(Reallocator& realloc, const Trace& trace) {
  for (const Request& r : trace.requests()) {
    if (r.type == Request::Type::kInsert) {
      benchmark::DoNotOptimize(realloc.Insert(r.id, r.size));
    } else {
      benchmark::DoNotOptimize(realloc.Delete(r.id));
    }
  }
  realloc.Quiesce();
}

template <typename Realloc>
void BM_Churn(benchmark::State& state) {
  const Trace trace = SharedTrace();
  for (auto _ : state) {
    AddressSpace space;
    Realloc realloc(&space);
    Replay(realloc, trace);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
}

template <typename Realloc>
void BM_ChurnCheckpointed(benchmark::State& state) {
  const Trace trace = SharedTrace();
  for (auto _ : state) {
    CheckpointManager manager;
    AddressSpace space(&manager);
    Realloc realloc(&space);
    Replay(realloc, trace);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
}

/// Same churn, but on the legacy map-based AddressSpace engine — the PR 2
/// baseline the flat engine is measured against.
template <typename Realloc>
void BM_ChurnMapEngine(benchmark::State& state) {
  const Trace trace = SharedTrace();
  for (auto _ : state) {
    AddressSpace space(AddressSpace::Engine::kMap);
    Realloc realloc(&space);
    Replay(realloc, trace);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
}

template <typename Realloc>
void BM_ChurnCheckpointedMapEngine(benchmark::State& state) {
  const Trace trace = SharedTrace();
  for (auto _ : state) {
    CheckpointManager manager;
    AddressSpace space(&manager, AddressSpace::Engine::kMap);
    Realloc realloc(&space);
    Replay(realloc, trace);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
}

BENCHMARK(BM_Churn<FirstFitAllocator>)->Name("churn/first-fit");
BENCHMARK(BM_Churn<FirstFitMapScan>)->Name("churn/first-fit-mapscan");
BENCHMARK(BM_Churn<BestFitAllocator>)->Name("churn/best-fit");
BENCHMARK(BM_Churn<BestFitMapScan>)->Name("churn/best-fit-mapscan");
BENCHMARK(BM_Churn<BuddyAllocator>)->Name("churn/buddy");
BENCHMARK(BM_Churn<LoggingCompactingReallocator>)->Name("churn/log-compact");
BENCHMARK(BM_Churn<SizeClassReallocator>)->Name("churn/size-class");
BENCHMARK(BM_Churn<CostObliviousReallocator>)->Name("churn/cost-oblivious");
BENCHMARK(BM_ChurnMapEngine<CostObliviousReallocator>)
    ->Name("churn/cost-oblivious-mapengine");
BENCHMARK(BM_ChurnCheckpointed<CheckpointedReallocator>)
    ->Name("churn/checkpointed");
BENCHMARK(BM_ChurnCheckpointedMapEngine<CheckpointedReallocator>)
    ->Name("churn/checkpointed-mapengine");
BENCHMARK(BM_ChurnCheckpointed<DeamortizedReallocator>)
    ->Name("churn/deamortized");

void BM_EpsilonSweep(benchmark::State& state) {
  const double eps = 1.0 / static_cast<double>(state.range(0));
  const Trace trace = SharedTrace();
  for (auto _ : state) {
    AddressSpace space;
    CostObliviousReallocator realloc(&space,
                                     CostObliviousReallocator::Options{eps});
    Replay(realloc, trace);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_EpsilonSweep)->Name("cost-oblivious/eps=1_over")->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_SizeSpread(benchmark::State& state) {
  const std::uint64_t max_size = static_cast<std::uint64_t>(state.range(0));
  const Trace trace = MakeChurnTrace({.operations = 20000,
                                      .target_live_volume = 1u << 20,
                                      .min_size = 1,
                                      .max_size = max_size,
                                      .seed = 5});
  for (auto _ : state) {
    AddressSpace space;
    CostObliviousReallocator realloc(&space);
    Replay(realloc, trace);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_SizeSpread)->Name("cost-oblivious/delta")->Arg(64)->Arg(1024)->Arg(16384);

}  // namespace
}  // namespace cosr

// Default the JSON report to BENCH_micro.json so every run leaves a perf
// trajectory artifact; explicit --benchmark_out flags still win.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out=", 0) == 0) has_out = true;
  }
  char default_out[] = "--benchmark_out=BENCH_micro.json";
  char default_fmt[] = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(default_out);
    args.push_back(default_fmt);
  }
  int adjusted_argc = static_cast<int>(args.size());
  benchmark::Initialize(&adjusted_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(adjusted_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
