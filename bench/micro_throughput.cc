// E10 — google-benchmark microbenchmarks: request throughput of every
// implementation on steady-state churn, plus the core structure across
// epsilons and size spreads. Not a paper table — the practical sanity check
// that the data structure overheads are laptop-friendly.

#include <benchmark/benchmark.h>

#include <memory>

#include "cosr/alloc/best_fit_allocator.h"
#include "cosr/alloc/buddy_allocator.h"
#include "cosr/alloc/first_fit_allocator.h"
#include "cosr/core/checkpointed_reallocator.h"
#include "cosr/core/cost_oblivious_reallocator.h"
#include "cosr/core/deamortized_reallocator.h"
#include "cosr/realloc/logging_compacting_reallocator.h"
#include "cosr/realloc/size_class_reallocator.h"
#include "cosr/storage/checkpoint_manager.h"
#include "cosr/workload/workload_generator.h"

namespace cosr {
namespace {

Trace SharedTrace() {
  return MakeChurnTrace({.operations = 20000,
                         .target_live_volume = 1u << 20,
                         .min_size = 1,
                         .max_size = 1024,
                         .seed = 99});
}

void Replay(Reallocator& realloc, const Trace& trace) {
  for (const Request& r : trace.requests()) {
    if (r.type == Request::Type::kInsert) {
      benchmark::DoNotOptimize(realloc.Insert(r.id, r.size));
    } else {
      benchmark::DoNotOptimize(realloc.Delete(r.id));
    }
  }
  realloc.Quiesce();
}

template <typename Realloc>
void BM_Churn(benchmark::State& state) {
  const Trace trace = SharedTrace();
  for (auto _ : state) {
    AddressSpace space;
    Realloc realloc(&space);
    Replay(realloc, trace);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
}

template <typename Realloc>
void BM_ChurnCheckpointed(benchmark::State& state) {
  const Trace trace = SharedTrace();
  for (auto _ : state) {
    CheckpointManager manager;
    AddressSpace space(&manager);
    Realloc realloc(&space);
    Replay(realloc, trace);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
}

BENCHMARK(BM_Churn<FirstFitAllocator>)->Name("churn/first-fit");
BENCHMARK(BM_Churn<BestFitAllocator>)->Name("churn/best-fit");
BENCHMARK(BM_Churn<BuddyAllocator>)->Name("churn/buddy");
BENCHMARK(BM_Churn<LoggingCompactingReallocator>)->Name("churn/log-compact");
BENCHMARK(BM_Churn<SizeClassReallocator>)->Name("churn/size-class");
BENCHMARK(BM_Churn<CostObliviousReallocator>)->Name("churn/cost-oblivious");
BENCHMARK(BM_ChurnCheckpointed<CheckpointedReallocator>)
    ->Name("churn/checkpointed");
BENCHMARK(BM_ChurnCheckpointed<DeamortizedReallocator>)
    ->Name("churn/deamortized");

void BM_EpsilonSweep(benchmark::State& state) {
  const double eps = 1.0 / static_cast<double>(state.range(0));
  const Trace trace = SharedTrace();
  for (auto _ : state) {
    AddressSpace space;
    CostObliviousReallocator realloc(&space,
                                     CostObliviousReallocator::Options{eps});
    Replay(realloc, trace);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_EpsilonSweep)->Name("cost-oblivious/eps=1_over")->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_SizeSpread(benchmark::State& state) {
  const std::uint64_t max_size = static_cast<std::uint64_t>(state.range(0));
  const Trace trace = MakeChurnTrace({.operations = 20000,
                                      .target_live_volume = 1u << 20,
                                      .min_size = 1,
                                      .max_size = max_size,
                                      .seed = 5});
  for (auto _ : state) {
    AddressSpace space;
    CostObliviousReallocator realloc(&space);
    Replay(realloc, trace);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_SizeSpread)->Name("cost-oblivious/delta")->Arg(64)->Arg(1024)->Arg(16384);

}  // namespace
}  // namespace cosr

BENCHMARK_MAIN();
