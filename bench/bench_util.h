#ifndef COSR_BENCH_BENCH_UTIL_H_
#define COSR_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <string>
#include <vector>

namespace cosr::bench {

/// Fixed-width ASCII table printer for the experiment binaries. Every bench
/// prints the experiment id, the paper's claim, the measured table, and a
/// one-line verdict, so `for b in build/bench/*; do $b; done` regenerates
/// the whole evaluation.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  void Print() const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      widths[c] = headers_[c].size();
      for (const auto& row : rows_) {
        if (c < row.size()) widths[c] = std::max(widths[c], row[c].size());
      }
    }
    PrintRow(headers_, widths);
    std::string rule;
    for (std::size_t c = 0; c < widths.size(); ++c) {
      rule += std::string(widths[c] + 2, '-');
      if (c + 1 < widths.size()) rule += "+";
    }
    std::printf("%s\n", rule.c_str());
    for (const auto& row : rows_) PrintRow(row, widths);
  }

 private:
  static void PrintRow(const std::vector<std::string>& row,
                       const std::vector<std::size_t>& widths) {
    std::string line;
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      line += " " + cell + std::string(widths[c] - cell.size() + 1, ' ');
      if (c + 1 < widths.size()) line += "|";
    }
    std::printf("%s\n", line.c_str());
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Fmt(double value, int decimals = 3) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
  return buffer;
}

inline void Banner(const char* experiment, const char* claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper claim: %s\n", claim);
  std::printf("================================================================\n");
}

inline void Verdict(bool ok, const std::string& text) {
  std::printf("verdict: %s — %s\n", ok ? "REPRODUCED" : "DEVIATION", text.c_str());
}

}  // namespace cosr::bench

#endif  // COSR_BENCH_BENCH_UTIL_H_
