// E10 — durability tier: what the crash-consistent move log costs and how
// fast recovery replays it.
//
//   * Log overhead — the same churn trace through a checkpoint-managed
//     reallocator with no log, a memory-sink log, and a file-backed log
//     (real write(2), fsync(2) at every checkpoint): throughput, log
//     growth, and sync counts side by side.
//   * Recovery time vs log length — recover complete logs of increasing
//     length into a fresh space + simulated disk; records/s and MB/s.
//   * Crash-recovery fuzz — the same deterministic harness the tests gate
//     on (record-boundary cuts, torn records, mid-batch tears across
//     scenarios x algorithms x facades), summarized per configuration.
//
// Writes BENCH_durability.json (run from the repo root to refresh the
// committed artifact). --smoke shrinks sizes and asserts via exit code
// that every injected crash point recovered exactly and that the run
// injected >= 1000 points in total — the CI durability gate.
//
// Usage: exp_durability [--smoke]

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "cosr/common/check.h"
#include "cosr/durability/crash_fuzz.h"
#include "cosr/durability/durability_hub.h"
#include "cosr/durability/recovery_manager.h"
#include "cosr/realloc/factory.h"
#include "cosr/storage/address_space.h"
#include "cosr/storage/checkpoint_manager.h"
#include "cosr/storage/simulated_disk.h"
#include "cosr/workload/trace.h"
#include "cosr/workload/workload_generator.h"

namespace cosr {
namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

Trace BenchTrace(std::uint64_t operations) {
  return MakeChurnTrace({.operations = operations,
                         .target_live_volume = 1u << 16,
                         .min_size = 1,
                         .max_size = 512,
                         .seed = 7});
}

// ------------------------------------------------------------ log overhead

struct OverheadRow {
  std::string algorithm;
  std::string sink;  // "none" | "memory" | "file"
  std::uint64_t operations = 0;
  double wall_seconds = 0;
  std::uint64_t log_records = 0;
  std::uint64_t log_bytes = 0;
  std::uint64_t log_syncs = 0;
};

/// Replays `trace` through a single-instance managed reallocator, wired to
/// `hub` when non-null, ending on Quiesce + a final checkpoint so the log
/// closes on a durable point.
bool DriveSingle(const std::string& algorithm, const Trace& trace,
                 DurabilityHub* hub, OverheadRow* row) {
  CheckpointManager manager;
  AddressSpace space(&manager);
  ReallocatorSpec spec;
  spec.algorithm = algorithm;
  spec.durability = hub;
  std::unique_ptr<Reallocator> realloc;
  const Status made = MakeReallocator(spec, &space, &realloc);
  if (!made.ok()) {
    std::printf("factory failed: %s\n", made.ToString().c_str());
    return false;
  }
  const auto start = Clock::now();
  for (const Request& request : trace.requests()) {
    const Status status = request.type == Request::Type::kInsert
                              ? realloc->Insert(request.id, request.size)
                              : realloc->Delete(request.id);
    if (!status.ok()) {
      std::printf("request failed: %s\n", status.ToString().c_str());
      return false;
    }
  }
  realloc->Quiesce();
  space.Checkpoint();
  row->wall_seconds = Seconds(start);
  row->algorithm = algorithm;
  row->operations = trace.requests().size();
  if (hub != nullptr) {
    row->log_records = hub->total_records();
    row->log_bytes = hub->total_bytes();
    row->log_syncs = hub->total_syncs();
  }
  return true;
}

bool RunOverhead(std::uint64_t operations, std::vector<OverheadRow>* rows) {
  std::printf("\nLog overhead (one churn trace, %llu ops, final state "
              "checkpointed):\n",
              static_cast<unsigned long long>(operations));
  bench::Table table({"algorithm", "sink", "ops/s", "overhead", "records",
                      "log bytes", "bytes/op", "syncs"});
  const Trace trace = BenchTrace(operations);
  bool ok = true;
  for (const std::string algorithm : {"checkpointed", "deamortized"}) {
    double baseline_wall = 0;
    for (const std::string sink : {"none", "memory", "file"}) {
      OverheadRow row;
      row.sink = sink;
      if (sink == "none") {
        ok &= DriveSingle(algorithm, trace, nullptr, &row);
        baseline_wall = row.wall_seconds;
      } else if (sink == "memory") {
        DurabilityHub hub;
        ok &= DriveSingle(algorithm, trace, &hub, &row);
      } else {
        DurabilityHub::Options hub_options;
        hub_options.sink_kind = DurabilityHub::SinkKind::kFile;
        hub_options.file_prefix = "exp_durability_" + algorithm + "_";
        DurabilityHub hub(hub_options);
        ok &= DriveSingle(algorithm, trace, &hub, &row);
        std::remove(hub.file_path(0).c_str());
      }
      if (!ok) return false;
      const double ops_per_sec =
          static_cast<double>(row.operations) / row.wall_seconds;
      const double overhead =
          baseline_wall > 0 ? row.wall_seconds / baseline_wall : 1.0;
      table.AddRow(
          {row.algorithm, row.sink, bench::Fmt(ops_per_sec / 1e6, 2) + "M",
           bench::Fmt(overhead, 2) + "x", std::to_string(row.log_records),
           std::to_string(row.log_bytes),
           bench::Fmt(static_cast<double>(row.log_bytes) /
                          static_cast<double>(row.operations),
                      1),
           std::to_string(row.log_syncs)});
      rows->push_back(row);
    }
  }
  table.Print();
  return ok;
}

// --------------------------------------------------- recovery time vs length

struct RecoveryRow {
  std::uint64_t operations = 0;
  std::uint64_t log_records = 0;
  std::uint64_t log_bytes = 0;
  double recover_wall_seconds = 0;
  std::uint64_t checkpoint_seq = 0;
};

bool RunRecovery(const std::vector<std::uint64_t>& op_counts,
                 std::vector<RecoveryRow>* rows) {
  std::printf("\nRecovery time vs log length (full log, fresh space + "
              "simulated disk):\n");
  bench::Table table({"ops", "records", "log bytes", "recover ms",
                      "records/s", "MB/s"});
  for (const std::uint64_t operations : op_counts) {
    DurabilityHub hub;
    OverheadRow drive;
    drive.sink = "memory";
    if (!DriveSingle("checkpointed", BenchTrace(operations), &hub, &drive)) {
      return false;
    }
    const MemoryLogSink* sink = hub.memory_sink(0);
    COSR_CHECK(sink != nullptr);

    AddressSpace space;
    SimulatedDisk disk;
    space.AddListener(&disk);
    RecoveryResult result;
    const auto start = Clock::now();
    const Status recovered = RecoveryManager::Recover(
        sink->data().data(), sink->data().size(), &space, &result);
    const double wall = Seconds(start);
    if (!recovered.ok() || result.torn_tail || result.records_discarded != 0) {
      std::printf("full-log recovery failed: %s\n",
                  recovered.ToString().c_str());
      return false;
    }
    RecoveryRow row;
    row.operations = operations;
    row.log_records = result.records_replayed;
    row.log_bytes = sink->size();
    row.recover_wall_seconds = wall;
    row.checkpoint_seq = result.checkpoint_seq;
    rows->push_back(row);
    table.AddRow({std::to_string(operations), std::to_string(row.log_records),
                  std::to_string(row.log_bytes), bench::Fmt(wall * 1e3, 2),
                  bench::Fmt(static_cast<double>(row.log_records) / wall / 1e6,
                             2) +
                      "M",
                  bench::Fmt(static_cast<double>(row.log_bytes) / wall / 1e6,
                             1)});
  }
  table.Print();
  return true;
}

// ------------------------------------------------------- crash-recovery fuzz

struct FuzzRow {
  CrashFuzzOptions options;
  CrashFuzzReport report;
  std::string mode;  // "sharded" | "concurrent"
};

bool RunFuzz(bool smoke, std::vector<FuzzRow>* rows,
             std::size_t* total_points) {
  std::printf("\nCrash-recovery fuzz (every injected point must recover the "
              "last-checkpointed state byte-for-byte):\n");
  bench::Table table({"scenario", "algorithm", "facade", "K", "points",
                      "boundary", "torn", "mid-batch", "ckpts", "records",
                      "migrations", "objects verified"});
  const std::vector<std::string> scenarios = {"steady-churn", "ramp-collapse",
                                              "bimodal-churn"};
  bool ok = true;
  for (const std::string& scenario : scenarios) {
    for (const std::string algorithm : {"checkpointed", "deamortized"}) {
      for (const std::uint32_t shards : {1u, 4u}) {
        FuzzRow row;
        row.mode = "sharded";
        row.options.scenario = scenario;
        row.options.algorithm = algorithm;
        row.options.shard_count = shards;
        row.options.seed = 3;
        if (!smoke) {
          row.options.operations = 600;
          row.options.boundary_points_per_shard = 60;
          row.options.torn_points_per_shard = 50;
          row.options.mid_batch_points_per_shard = 50;
        }
        rows->push_back(row);
      }
    }
    FuzzRow row;
    row.mode = "concurrent";
    row.options.scenario = scenario;
    row.options.algorithm = "checkpointed";
    row.options.shard_count = 4;
    row.options.concurrent = true;
    row.options.seed = 3;
    rows->push_back(row);
  }
  // Migration-active cells: the rebalancer drains victims across shards
  // during the drive, so crash points cut logs with migration records
  // (source-side Delete, destination-side Place) in flight.
  for (const std::string algorithm : {"checkpointed", "deamortized"}) {
    FuzzRow row;
    row.mode = "sharded";
    row.options.scenario = "zipf-churn";
    row.options.algorithm = algorithm;
    row.options.shard_count = 4;
    row.options.rebalance = true;
    row.options.seed = 3;
    if (!smoke) {
      row.options.operations = 600;
      row.options.boundary_points_per_shard = 60;
      row.options.torn_points_per_shard = 50;
      row.options.mid_batch_points_per_shard = 50;
    }
    rows->push_back(row);
  }
  {
    FuzzRow row;
    row.mode = "concurrent";
    row.options.scenario = "zipf-churn";
    row.options.algorithm = "checkpointed";
    row.options.shard_count = 4;
    row.options.concurrent = true;
    row.options.rebalance = true;
    row.options.seed = 3;
    rows->push_back(row);
  }
  for (FuzzRow& row : *rows) {
    const Status status = RunCrashFuzz(row.options, &row.report);
    if (!status.ok()) {
      std::printf("FUZZ FAILURE %s/%s/%s K=%u: %s\n",
                  row.options.scenario.c_str(), row.options.algorithm.c_str(),
                  row.mode.c_str(), row.options.shard_count,
                  status.ToString().c_str());
      ok = false;
      continue;
    }
    *total_points += row.report.crash_points;
    // The synchronous migration-active cells must actually migrate, or
    // their crash points degenerate into the plain sharded cells.
    if (row.options.rebalance && !row.options.concurrent &&
        row.report.migrations == 0) {
      std::printf("FUZZ FAILURE %s/%s/%s K=%u: rebalance cell ran with "
                  "zero migrations\n",
                  row.options.scenario.c_str(), row.options.algorithm.c_str(),
                  row.mode.c_str(), row.options.shard_count);
      ok = false;
    }
    table.AddRow({row.options.scenario, row.options.algorithm, row.mode,
                  std::to_string(row.options.shard_count),
                  std::to_string(row.report.crash_points),
                  std::to_string(row.report.boundary_points),
                  std::to_string(row.report.torn_points),
                  std::to_string(row.report.mid_batch_points),
                  std::to_string(row.report.checkpoints),
                  std::to_string(row.report.log_records),
                  std::to_string(row.report.migrations),
                  std::to_string(row.report.objects_verified)});
  }
  table.Print();
  std::printf("total injected crash points: %zu\n", *total_points);
  return ok;
}

// ----------------------------------------------------------------- the JSON

void WriteJson(const std::vector<OverheadRow>& overhead,
               const std::vector<RecoveryRow>& recovery,
               const std::vector<FuzzRow>& fuzz, std::size_t total_points,
               bool smoke) {
  std::FILE* json = std::fopen("BENCH_durability.json", "w");
  if (json == nullptr) {
    std::printf("cannot open BENCH_durability.json for writing\n");
    return;
  }
  std::fprintf(json,
               "{\n  \"schema_version\": 2,\n  \"smoke\": %s,\n"
               "  \"total_crash_points\": %zu,\n  \"rows\": [\n",
               smoke ? "true" : "false", total_points);
  bool first = true;
  for (const OverheadRow& row : overhead) {
    std::fprintf(
        json,
        "%s    {\"section\": \"overhead\", \"algorithm\": \"%s\", "
        "\"sink\": \"%s\", \"operations\": %llu, \"wall_seconds\": %.6f, "
        "\"ops_per_sec\": %.1f, \"log_records\": %llu, \"log_bytes\": %llu, "
        "\"log_syncs\": %llu}",
        first ? "" : ",\n", row.algorithm.c_str(), row.sink.c_str(),
        static_cast<unsigned long long>(row.operations), row.wall_seconds,
        static_cast<double>(row.operations) / row.wall_seconds,
        static_cast<unsigned long long>(row.log_records),
        static_cast<unsigned long long>(row.log_bytes),
        static_cast<unsigned long long>(row.log_syncs));
    first = false;
  }
  for (const RecoveryRow& row : recovery) {
    std::fprintf(
        json,
        "%s    {\"section\": \"recovery\", \"operations\": %llu, "
        "\"log_records\": %llu, \"log_bytes\": %llu, "
        "\"recover_wall_seconds\": %.6f, \"records_per_sec\": %.1f, "
        "\"checkpoint_seq\": %llu}",
        first ? "" : ",\n", static_cast<unsigned long long>(row.operations),
        static_cast<unsigned long long>(row.log_records),
        static_cast<unsigned long long>(row.log_bytes),
        row.recover_wall_seconds,
        static_cast<double>(row.log_records) / row.recover_wall_seconds,
        static_cast<unsigned long long>(row.checkpoint_seq));
    first = false;
  }
  for (const FuzzRow& row : fuzz) {
    std::fprintf(
        json,
        "%s    {\"section\": \"fuzz\", \"scenario\": \"%s\", "
        "\"algorithm\": \"%s\", \"facade\": \"%s\", \"shards\": %u, "
        "\"rebalance\": %s, \"crash_points\": %zu, \"boundary_points\": %zu, "
        "\"torn_points\": %zu, \"mid_batch_points\": %zu, "
        "\"checkpoints\": %zu, \"log_records\": %llu, \"log_bytes\": %llu, "
        "\"recovered_records\": %llu, \"migrations\": %llu, "
        "\"objects_verified\": %zu}",
        first ? "" : ",\n", row.options.scenario.c_str(),
        row.options.algorithm.c_str(), row.mode.c_str(),
        row.options.shard_count, row.options.rebalance ? "true" : "false",
        row.report.crash_points,
        row.report.boundary_points, row.report.torn_points,
        row.report.mid_batch_points, row.report.checkpoints,
        static_cast<unsigned long long>(row.report.log_records),
        static_cast<unsigned long long>(row.report.log_bytes),
        static_cast<unsigned long long>(row.report.recovered_records),
        static_cast<unsigned long long>(row.report.migrations),
        row.report.objects_verified);
    first = false;
  }
  std::fprintf(json, "\n  ]\n}\n");
  std::fclose(json);
  std::printf("wrote BENCH_durability.json (%zu rows)\n",
              overhead.size() + recovery.size() + fuzz.size());
}

}  // namespace
}  // namespace cosr

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  cosr::bench::Banner(
      "E10: crash-consistent move log + recovery (Section 3.1 durability)",
      "journaling every move batch costs O(1) amortized bytes per op; any "
      "crash recovers exactly the last-checkpointed map");

  std::vector<cosr::OverheadRow> overhead;
  std::vector<cosr::RecoveryRow> recovery;
  std::vector<cosr::FuzzRow> fuzz;
  std::size_t total_points = 0;

  bool ok = cosr::RunOverhead(smoke ? 8000 : 60000, &overhead);
  ok &= cosr::RunRecovery(smoke ? std::vector<std::uint64_t>{2000, 8000}
                                : std::vector<std::uint64_t>{2000, 8000, 32000,
                                                             120000},
                          &recovery);
  ok &= cosr::RunFuzz(smoke, &fuzz, &total_points);
  ok &= total_points >= 1000;

  cosr::WriteJson(overhead, recovery, fuzz, total_points, smoke);
  cosr::bench::Verdict(
      ok,
      "every injected crash point recovered byte-for-byte (>= 1000 points); "
      "log overhead and recovery throughput recorded");
  return ok ? 0 : 1;
}
