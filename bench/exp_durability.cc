// E10 — durability tier: what the crash-consistent move log costs, what
// the group-commit fast path buys back, and how fast recovery replays it.
//
//   * Log overhead — the same churn trace through a checkpoint-managed
//     reallocator with no log, a memory-sink log, and a file-backed log
//     (real write(2)/fsync(2)), each logging sink swept across the
//     group-commit policy grid: sync-every-checkpoint (the strict PR 6
//     discipline), coalescing windows of 8 and 32 checkpoints per fsync,
//     and coalescing + checkpoint-time log compaction.
//   * Recovery time vs log length — recover complete logs of increasing
//     length into a fresh space + simulated disk; each length is measured
//     uncompacted and compacted, and the compacted log must replay
//     strictly fewer records to the same checkpoint.
//   * Crash-recovery fuzz — the same deterministic harness the tests gate
//     on (record-boundary cuts, torn records, mid-batch tears across
//     scenarios x algorithms x facades), now including group-commit
//     policy cells whose crash surface covers unsynced checkpoint records
//     and retired pre-compaction streams.
//
// Writes BENCH_durability.json (run from the repo root to refresh the
// committed artifact). --smoke shrinks sizes and asserts via exit code
// that every injected crash point recovered exactly, that the run
// injected >= 1000 points in total, that coalescing cells really coalesce
// (syncs < checkpoints), that compacting cells commit rewrites and fuzz
// the retired streams, and that compaction shrinks the replayed record
// count — the CI durability gate.
//
// Usage: exp_durability [--smoke]

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "cosr/common/check.h"
#include "cosr/durability/crash_fuzz.h"
#include "cosr/durability/durability_hub.h"
#include "cosr/durability/recovery_manager.h"
#include "cosr/realloc/factory.h"
#include "cosr/storage/address_space.h"
#include "cosr/storage/checkpoint_manager.h"
#include "cosr/storage/simulated_disk.h"
#include "cosr/workload/trace.h"
#include "cosr/workload/workload_generator.h"

namespace cosr {
namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

Trace BenchTrace(std::uint64_t operations) {
  return MakeChurnTrace({.operations = operations,
                         .target_live_volume = 1u << 16,
                         .min_size = 1,
                         .max_size = 512,
                         .seed = 7});
}

// ------------------------------------------------------------ log overhead

struct OverheadRow {
  std::string algorithm;
  std::string sink;    // "none" | "memory" | "file"
  std::string policy;  // "-" | "sync1" | "gc8" | "gc32" | "gc32+compact"
  std::uint32_t max_unsynced = 1;
  std::uint64_t compaction_threshold = 0;
  std::uint64_t operations = 0;
  double wall_seconds = 0;
  std::uint64_t log_records = 0;
  std::uint64_t log_bytes = 0;
  std::uint64_t log_syncs = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t log_compactions = 0;
  double sync_wall_seconds = 0;
};

/// Replays `trace` through a single-instance managed reallocator, wired to
/// `hub` when non-null, ending on Quiesce + a final checkpoint so the log
/// closes on a durable point.
bool DriveSingle(const std::string& algorithm, const Trace& trace,
                 DurabilityHub* hub, OverheadRow* row) {
  CheckpointManager manager;
  AddressSpace space(&manager);
  ReallocatorSpec spec;
  spec.algorithm = algorithm;
  spec.durability = hub;
  std::unique_ptr<Reallocator> realloc;
  const Status made = MakeReallocator(spec, &space, &realloc);
  if (!made.ok()) {
    std::printf("factory failed: %s\n", made.ToString().c_str());
    return false;
  }
  const auto start = Clock::now();
  for (const Request& request : trace.requests()) {
    const Status status = request.type == Request::Type::kInsert
                              ? realloc->Insert(request.id, request.size)
                              : realloc->Delete(request.id);
    if (!status.ok()) {
      std::printf("request failed: %s\n", status.ToString().c_str());
      return false;
    }
  }
  realloc->Quiesce();
  space.Checkpoint();
  row->wall_seconds = Seconds(start);
  row->algorithm = algorithm;
  row->operations = trace.requests().size();
  if (hub != nullptr) {
    row->log_records = hub->total_records();
    row->log_bytes = hub->total_bytes();
    row->log_syncs = hub->total_syncs();
    row->checkpoints = hub->total_checkpoints();
    row->log_compactions = hub->total_compactions();
    row->sync_wall_seconds = hub->total_sync_wall_seconds();
  }
  return true;
}

struct PolicyCell {
  const char* label;
  std::uint32_t max_unsynced;
  std::uint64_t compaction_threshold;
};

bool RunOverhead(std::uint64_t operations, std::vector<OverheadRow>* rows) {
  std::printf("\nLog overhead (one churn trace, %llu ops, final state "
              "checkpointed; policy = checkpoints coalesced per fsync):\n",
              static_cast<unsigned long long>(operations));
  bench::Table table({"algorithm", "sink", "policy", "ops/s", "overhead",
                      "records", "log bytes", "syncs", "ckpts", "compactions",
                      "sync ms"});
  const Trace trace = BenchTrace(operations);
  const PolicyCell kPolicies[] = {
      {"sync1", 1, 0},
      {"gc8", 8, 0},
      {"gc32", 32, 0},
      {"gc32+compact", 32, std::uint64_t{1} << 16},
  };
  bool ok = true;
  for (const std::string algorithm : {"checkpointed", "deamortized"}) {
    double baseline_wall = 0;
    {
      OverheadRow row;
      row.sink = "none";
      row.policy = "-";
      ok &= DriveSingle(algorithm, trace, nullptr, &row);
      if (!ok) return false;
      baseline_wall = row.wall_seconds;
      table.AddRow({row.algorithm, row.sink, row.policy,
                    bench::Fmt(static_cast<double>(row.operations) /
                                   row.wall_seconds / 1e6,
                               2) +
                        "M",
                    "1.00x", "-", "-", "-", "-", "-", "-"});
      rows->push_back(row);
    }
    for (const std::string sink : {"memory", "file"}) {
      for (const PolicyCell& cell : kPolicies) {
        OverheadRow row;
        row.sink = sink;
        row.policy = cell.label;
        row.max_unsynced = cell.max_unsynced;
        row.compaction_threshold = cell.compaction_threshold;
        DurabilityHub::Options hub_options;
        hub_options.group_commit.max_unsynced_checkpoints = cell.max_unsynced;
        hub_options.group_commit.compaction_threshold_bytes =
            cell.compaction_threshold;
        if (sink == "file") {
          hub_options.sink_kind = DurabilityHub::SinkKind::kFile;
          hub_options.file_prefix =
              "exp_durability_" + algorithm + "_" + cell.label + "_";
        }
        DurabilityHub hub(hub_options);
        ok &= DriveSingle(algorithm, trace, &hub, &row);
        if (sink == "file") std::remove(hub.file_path(0).c_str());
        if (!ok) return false;
        // Sync accounting invariants: a sync only ever happens at a
        // checkpoint, and the coalescing window is honored exactly (the
        // tail of the last window legitimately stays unsynced).
        if (row.log_syncs > row.checkpoints) {
          std::printf("OVERHEAD FAILURE %s/%s/%s: more syncs than "
                      "checkpoints\n",
                      algorithm.c_str(), sink.c_str(), cell.label);
          ok = false;
        }
        if (row.log_syncs != row.checkpoints / cell.max_unsynced) {
          std::printf("OVERHEAD FAILURE %s/%s/%s: %llu syncs for %llu "
                      "checkpoints (window %u)\n",
                      algorithm.c_str(), sink.c_str(), cell.label,
                      static_cast<unsigned long long>(row.log_syncs),
                      static_cast<unsigned long long>(row.checkpoints),
                      cell.max_unsynced);
          ok = false;
        }
        if (cell.compaction_threshold > 0 && row.log_compactions == 0) {
          std::printf("OVERHEAD FAILURE %s/%s/%s: compaction never fired\n",
                      algorithm.c_str(), sink.c_str(), cell.label);
          ok = false;
        }
        const double ops_per_sec =
            static_cast<double>(row.operations) / row.wall_seconds;
        const double overhead =
            baseline_wall > 0 ? row.wall_seconds / baseline_wall : 1.0;
        table.AddRow({row.algorithm, row.sink, row.policy,
                      bench::Fmt(ops_per_sec / 1e6, 2) + "M",
                      bench::Fmt(overhead, 2) + "x",
                      std::to_string(row.log_records),
                      std::to_string(row.log_bytes),
                      std::to_string(row.log_syncs),
                      std::to_string(row.checkpoints),
                      std::to_string(row.log_compactions),
                      bench::Fmt(row.sync_wall_seconds * 1e3, 1)});
        rows->push_back(row);
      }
    }
  }
  table.Print();
  // The headline: what coalescing buys on the file sink, where each saved
  // sync is a real fsync(2).
  double file_sync1 = 0;
  double file_gc32 = 0;
  for (const OverheadRow& row : *rows) {
    if (row.algorithm != "checkpointed" || row.sink != "file") continue;
    const double ops_per_sec =
        static_cast<double>(row.operations) / row.wall_seconds;
    if (row.policy == "sync1") file_sync1 = ops_per_sec;
    if (row.policy == "gc32") file_gc32 = ops_per_sec;
  }
  if (file_sync1 > 0 && file_gc32 > 0) {
    std::printf("file-sink group-commit speedup (checkpointed, gc32 vs "
                "sync1): %.1fx\n",
                file_gc32 / file_sync1);
    if (file_gc32 < 5 * file_sync1) {
      std::printf("OVERHEAD FAILURE: gc32 under 5x sync1 on the file sink\n");
      ok = false;
    }
  }
  return ok;
}

// --------------------------------------------------- recovery time vs length

struct RecoveryRow {
  std::uint64_t operations = 0;
  bool compacted = false;
  std::uint64_t log_records = 0;
  std::uint64_t log_bytes = 0;
  double recover_wall_seconds = 0;
  std::uint64_t checkpoint_seq = 0;
};

bool RunRecovery(const std::vector<std::uint64_t>& op_counts,
                 std::vector<RecoveryRow>* rows) {
  std::printf("\nRecovery time vs log length (full log, fresh space + "
              "simulated disk; compacted = checkpoint-time log "
              "compaction enabled during the drive):\n");
  bench::Table table({"ops", "compacted", "records", "log bytes",
                      "recover ms", "records/s", "MB/s"});
  bool ok = true;
  for (const std::uint64_t operations : op_counts) {
    std::uint64_t replayed_plain = 0;
    std::uint64_t replayed_compacted = 0;
    std::uint64_t seq_plain = 0;
    std::uint64_t seq_compacted = 0;
    for (const bool compacted : {false, true}) {
      DurabilityHub::Options hub_options;
      if (compacted) {
        hub_options.group_commit.compaction_threshold_bytes =
            std::uint64_t{1} << 14;
      }
      DurabilityHub hub(hub_options);
      OverheadRow drive;
      drive.sink = "memory";
      if (!DriveSingle("checkpointed", BenchTrace(operations), &hub,
                       &drive)) {
        return false;
      }
      if (compacted && hub.total_compactions() == 0) {
        std::printf("RECOVERY FAILURE: compaction never fired at %llu ops\n",
                    static_cast<unsigned long long>(operations));
        ok = false;
      }
      const MemoryLogSink* sink = hub.memory_sink(0);
      COSR_CHECK(sink != nullptr);

      AddressSpace space;
      SimulatedDisk disk;
      space.AddListener(&disk);
      RecoveryResult result;
      const auto start = Clock::now();
      const Status recovered = RecoveryManager::Recover(
          sink->data().data(), sink->data().size(), &space, &result);
      const double wall = Seconds(start);
      if (!recovered.ok() || result.torn_tail ||
          result.records_discarded != 0) {
        std::printf("full-log recovery failed: %s\n",
                    recovered.ToString().c_str());
        return false;
      }
      RecoveryRow row;
      row.operations = operations;
      row.compacted = compacted;
      row.log_records = result.records_replayed;
      row.log_bytes = sink->size();
      row.recover_wall_seconds = wall;
      row.checkpoint_seq = result.checkpoint_seq;
      rows->push_back(row);
      (compacted ? replayed_compacted : replayed_plain) = row.log_records;
      (compacted ? seq_compacted : seq_plain) = row.checkpoint_seq;
      table.AddRow(
          {std::to_string(operations), compacted ? "yes" : "no",
           std::to_string(row.log_records), std::to_string(row.log_bytes),
           bench::Fmt(wall * 1e3, 2),
           bench::Fmt(static_cast<double>(row.log_records) / wall / 1e6, 2) +
               "M",
           bench::Fmt(static_cast<double>(row.log_bytes) / wall / 1e6, 1)});
    }
    // The point of compaction: the same trace, the same final checkpoint,
    // strictly fewer records to replay.
    if (seq_compacted != seq_plain) {
      std::printf("RECOVERY FAILURE at %llu ops: compacted log recovered "
                  "seq %llu, plain log seq %llu\n",
                  static_cast<unsigned long long>(operations),
                  static_cast<unsigned long long>(seq_compacted),
                  static_cast<unsigned long long>(seq_plain));
      ok = false;
    }
    if (replayed_compacted >= replayed_plain) {
      std::printf("RECOVERY FAILURE at %llu ops: compaction did not shrink "
                  "the replayed record count (%llu vs %llu)\n",
                  static_cast<unsigned long long>(operations),
                  static_cast<unsigned long long>(replayed_compacted),
                  static_cast<unsigned long long>(replayed_plain));
      ok = false;
    }
  }
  table.Print();
  return ok;
}

// ------------------------------------------------------- crash-recovery fuzz

struct FuzzRow {
  CrashFuzzOptions options;
  CrashFuzzReport report;
  std::string mode;            // "sharded" | "concurrent"
  std::string policy = "sync1";
};

void FullSizePoints(CrashFuzzOptions* options) {
  options->operations = 600;
  options->boundary_points_per_shard = 60;
  options->torn_points_per_shard = 50;
  options->mid_batch_points_per_shard = 50;
}

/// The new policy cells carry the acceptance bar of >= 1000 points each at
/// full size, so they get a denser injection grid than the legacy cells.
void FullSizePolicyPoints(CrashFuzzOptions* options) {
  options->operations = 800;
  options->boundary_points_per_shard = 120;
  options->torn_points_per_shard = 100;
  options->mid_batch_points_per_shard = 100;
}

bool RunFuzz(bool smoke, std::vector<FuzzRow>* rows,
             std::size_t* total_points) {
  std::printf("\nCrash-recovery fuzz (every injected point must recover the "
              "last-checkpointed state byte-for-byte):\n");
  bench::Table table({"scenario", "algorithm", "facade", "K", "policy",
                      "points", "boundary", "torn", "mid-batch", "pre-compact",
                      "ckpts", "syncs", "compactions", "records",
                      "migrations", "objects verified"});
  const std::vector<std::string> scenarios = {"steady-churn", "ramp-collapse",
                                              "bimodal-churn"};
  bool ok = true;
  for (const std::string& scenario : scenarios) {
    for (const std::string algorithm : {"checkpointed", "deamortized"}) {
      for (const std::uint32_t shards : {1u, 4u}) {
        FuzzRow row;
        row.mode = "sharded";
        row.options.scenario = scenario;
        row.options.algorithm = algorithm;
        row.options.shard_count = shards;
        row.options.seed = 3;
        if (!smoke) FullSizePoints(&row.options);
        rows->push_back(row);
      }
    }
    FuzzRow row;
    row.mode = "concurrent";
    row.options.scenario = scenario;
    row.options.algorithm = "checkpointed";
    row.options.shard_count = 4;
    row.options.concurrent = true;
    row.options.seed = 3;
    rows->push_back(row);
  }
  // Migration-active cells: the rebalancer drains victims across shards
  // during the drive, so crash points cut logs with migration records
  // (source-side Delete, destination-side Place) in flight.
  for (const std::string algorithm : {"checkpointed", "deamortized"}) {
    FuzzRow row;
    row.mode = "sharded";
    row.options.scenario = "zipf-churn";
    row.options.algorithm = algorithm;
    row.options.shard_count = 4;
    row.options.rebalance = true;
    row.options.seed = 3;
    if (!smoke) FullSizePoints(&row.options);
    rows->push_back(row);
  }
  {
    FuzzRow row;
    row.mode = "concurrent";
    row.options.scenario = "zipf-churn";
    row.options.algorithm = "checkpointed";
    row.options.shard_count = 4;
    row.options.concurrent = true;
    row.options.rebalance = true;
    row.options.seed = 3;
    rows->push_back(row);
  }
  // Group-commit policy cells: coalesced syncs put unsynced checkpoint
  // records on the crash surface (legal landing points), and compaction
  // adds cuts inside retired pre-compaction streams and compacted
  // snapshot prefixes.
  {
    FuzzRow row;
    row.mode = "sharded";
    row.options.scenario = "steady-churn";
    row.options.algorithm = "checkpointed";
    row.options.shard_count = 4;
    row.options.seed = 3;
    row.options.group_commit.max_unsynced_checkpoints = 4;
    row.policy = "gc4";
    if (!smoke) FullSizePolicyPoints(&row.options);
    rows->push_back(row);
  }
  {
    FuzzRow row;
    row.mode = "sharded";
    row.options.scenario = "ramp-collapse";
    row.options.algorithm = "deamortized";
    row.options.shard_count = 4;
    row.options.seed = 3;
    row.options.group_commit.max_unsynced_checkpoints = 8;
    row.options.group_commit.compaction_threshold_bytes = 2048;
    row.policy = "gc8+compact";
    if (!smoke) FullSizePolicyPoints(&row.options);
    rows->push_back(row);
  }
  {
    FuzzRow row;
    row.mode = "concurrent";
    row.options.scenario = "steady-churn";
    row.options.algorithm = "checkpointed";
    row.options.shard_count = 4;
    row.options.concurrent = true;
    row.options.seed = 3;
    row.options.group_commit.max_unsynced_checkpoints = 4;
    row.options.group_commit.compaction_threshold_bytes = 4096;
    row.policy = "gc4+compact";
    if (!smoke) FullSizePolicyPoints(&row.options);
    rows->push_back(row);
  }
  for (FuzzRow& row : *rows) {
    const Status status = RunCrashFuzz(row.options, &row.report);
    if (!status.ok()) {
      std::printf("FUZZ FAILURE %s/%s/%s K=%u: %s\n",
                  row.options.scenario.c_str(), row.options.algorithm.c_str(),
                  row.mode.c_str(), row.options.shard_count,
                  status.ToString().c_str());
      ok = false;
      continue;
    }
    *total_points += row.report.crash_points;
    // The synchronous migration-active cells must actually migrate, or
    // their crash points degenerate into the plain sharded cells.
    if (row.options.rebalance && !row.options.concurrent &&
        row.report.migrations == 0) {
      std::printf("FUZZ FAILURE %s/%s/%s K=%u: rebalance cell ran with "
                  "zero migrations\n",
                  row.options.scenario.c_str(), row.options.algorithm.c_str(),
                  row.mode.c_str(), row.options.shard_count);
      ok = false;
    }
    // The policy cells must exercise what they claim: coalescing cells
    // really coalesce, compacting cells really retire streams — and at
    // full size each policy cell carries the >= 1000 point bar alone.
    if (!row.options.group_commit.sync_every_checkpoint() &&
        row.report.syncs >= row.report.checkpoints) {
      std::printf("FUZZ FAILURE %s cell: coalescing policy never "
                  "coalesced (%llu syncs, %zu checkpoints)\n",
                  row.policy.c_str(),
                  static_cast<unsigned long long>(row.report.syncs),
                  row.report.checkpoints);
      ok = false;
    }
    if (row.options.group_commit.compaction_threshold_bytes > 0 &&
        (row.report.compactions == 0 ||
         row.report.pre_compaction_points == 0)) {
      std::printf("FUZZ FAILURE %s cell: compacting policy retired no "
                  "streams (%llu compactions, %zu pre-compaction points)\n",
                  row.policy.c_str(),
                  static_cast<unsigned long long>(row.report.compactions),
                  row.report.pre_compaction_points);
      ok = false;
    }
    if (!smoke && row.policy != "sync1" && row.report.crash_points < 1000) {
      std::printf("FUZZ FAILURE %s cell: %zu crash points, acceptance "
                  "needs >= 1000 per policy cell\n",
                  row.policy.c_str(), row.report.crash_points);
      ok = false;
    }
    table.AddRow({row.options.scenario, row.options.algorithm, row.mode,
                  std::to_string(row.options.shard_count), row.policy,
                  std::to_string(row.report.crash_points),
                  std::to_string(row.report.boundary_points),
                  std::to_string(row.report.torn_points),
                  std::to_string(row.report.mid_batch_points),
                  std::to_string(row.report.pre_compaction_points),
                  std::to_string(row.report.checkpoints),
                  std::to_string(row.report.syncs),
                  std::to_string(row.report.compactions),
                  std::to_string(row.report.log_records),
                  std::to_string(row.report.migrations),
                  std::to_string(row.report.objects_verified)});
  }
  table.Print();
  std::printf("total injected crash points: %zu\n", *total_points);
  return ok;
}

// ----------------------------------------------------------------- the JSON

void WriteJson(const std::vector<OverheadRow>& overhead,
               const std::vector<RecoveryRow>& recovery,
               const std::vector<FuzzRow>& fuzz, std::size_t total_points,
               bool smoke) {
  std::FILE* json = std::fopen("BENCH_durability.json", "w");
  if (json == nullptr) {
    std::printf("cannot open BENCH_durability.json for writing\n");
    return;
  }
  std::fprintf(json,
               "{\n  \"schema_version\": 3,\n  \"smoke\": %s,\n"
               "  \"total_crash_points\": %zu,\n  \"rows\": [\n",
               smoke ? "true" : "false", total_points);
  bool first = true;
  for (const OverheadRow& row : overhead) {
    std::fprintf(
        json,
        "%s    {\"section\": \"overhead\", \"algorithm\": \"%s\", "
        "\"sink\": \"%s\", \"policy\": \"%s\", "
        "\"max_unsynced_checkpoints\": %u, "
        "\"compaction_threshold_bytes\": %llu, \"operations\": %llu, "
        "\"wall_seconds\": %.6f, \"ops_per_sec\": %.1f, "
        "\"log_records\": %llu, \"log_bytes\": %llu, \"log_syncs\": %llu, "
        "\"checkpoints\": %llu, \"log_compactions\": %llu, "
        "\"sync_wall_seconds\": %.6f}",
        first ? "" : ",\n", row.algorithm.c_str(), row.sink.c_str(),
        row.policy.c_str(), row.max_unsynced,
        static_cast<unsigned long long>(row.compaction_threshold),
        static_cast<unsigned long long>(row.operations), row.wall_seconds,
        static_cast<double>(row.operations) / row.wall_seconds,
        static_cast<unsigned long long>(row.log_records),
        static_cast<unsigned long long>(row.log_bytes),
        static_cast<unsigned long long>(row.log_syncs),
        static_cast<unsigned long long>(row.checkpoints),
        static_cast<unsigned long long>(row.log_compactions),
        row.sync_wall_seconds);
    first = false;
  }
  for (const RecoveryRow& row : recovery) {
    std::fprintf(
        json,
        "%s    {\"section\": \"recovery\", \"operations\": %llu, "
        "\"compacted\": %s, \"log_records\": %llu, \"log_bytes\": %llu, "
        "\"recover_wall_seconds\": %.6f, \"records_per_sec\": %.1f, "
        "\"checkpoint_seq\": %llu}",
        first ? "" : ",\n", static_cast<unsigned long long>(row.operations),
        row.compacted ? "true" : "false",
        static_cast<unsigned long long>(row.log_records),
        static_cast<unsigned long long>(row.log_bytes),
        row.recover_wall_seconds,
        static_cast<double>(row.log_records) / row.recover_wall_seconds,
        static_cast<unsigned long long>(row.checkpoint_seq));
    first = false;
  }
  for (const FuzzRow& row : fuzz) {
    std::fprintf(
        json,
        "%s    {\"section\": \"fuzz\", \"scenario\": \"%s\", "
        "\"algorithm\": \"%s\", \"facade\": \"%s\", \"shards\": %u, "
        "\"rebalance\": %s, \"policy\": \"%s\", \"crash_points\": %zu, "
        "\"boundary_points\": %zu, \"torn_points\": %zu, "
        "\"mid_batch_points\": %zu, \"pre_compaction_points\": %zu, "
        "\"checkpoints\": %zu, \"syncs\": %llu, \"compactions\": %llu, "
        "\"log_records\": %llu, \"log_bytes\": %llu, "
        "\"recovered_records\": %llu, \"migrations\": %llu, "
        "\"objects_verified\": %zu}",
        first ? "" : ",\n", row.options.scenario.c_str(),
        row.options.algorithm.c_str(), row.mode.c_str(),
        row.options.shard_count, row.options.rebalance ? "true" : "false",
        row.policy.c_str(), row.report.crash_points,
        row.report.boundary_points, row.report.torn_points,
        row.report.mid_batch_points, row.report.pre_compaction_points,
        row.report.checkpoints,
        static_cast<unsigned long long>(row.report.syncs),
        static_cast<unsigned long long>(row.report.compactions),
        static_cast<unsigned long long>(row.report.log_records),
        static_cast<unsigned long long>(row.report.log_bytes),
        static_cast<unsigned long long>(row.report.recovered_records),
        static_cast<unsigned long long>(row.report.migrations),
        row.report.objects_verified);
    first = false;
  }
  std::fprintf(json, "\n  ]\n}\n");
  std::fclose(json);
  std::printf("wrote BENCH_durability.json (%zu rows)\n",
              overhead.size() + recovery.size() + fuzz.size());
}

}  // namespace
}  // namespace cosr

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  cosr::bench::Banner(
      "E10: crash-consistent move log + group-commit fast path (Section 3.1 "
      "durability)",
      "journaling every move batch costs O(1) amortized bytes per op; sync "
      "coalescing amortizes the fsync, compaction bounds replay; any crash "
      "recovers exactly a checkpointed map");

  std::vector<cosr::OverheadRow> overhead;
  std::vector<cosr::RecoveryRow> recovery;
  std::vector<cosr::FuzzRow> fuzz;
  std::size_t total_points = 0;

  bool ok = cosr::RunOverhead(smoke ? 8000 : 60000, &overhead);
  ok &= cosr::RunRecovery(smoke ? std::vector<std::uint64_t>{2000, 8000}
                                : std::vector<std::uint64_t>{2000, 8000, 32000,
                                                             120000},
                          &recovery);
  ok &= cosr::RunFuzz(smoke, &fuzz, &total_points);
  ok &= total_points >= 1000;

  cosr::WriteJson(overhead, recovery, fuzz, total_points, smoke);
  cosr::bench::Verdict(
      ok,
      "every injected crash point recovered byte-for-byte (>= 1000 points); "
      "group-commit cells coalesced and compacted as configured; compaction "
      "shrank replay; log overhead and recovery throughput recorded");
  return ok ? 0 : 1;
}
