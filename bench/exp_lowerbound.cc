// E8 — Lemma 3.7: for any reallocator maintaining a (1+1/2)V footprint,
// the sequence {insert delta; insert delta units; delete delta} forces a
// reallocation cost of Omega(f(delta)) on some update — even knowing f and
// the future. We run the adversary against every implementation and report
// the worst single-op cost normalized by f(delta).

#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "cosr/storage/address_space.h"
#include "cosr/core/checkpointed_reallocator.h"
#include "cosr/core/cost_oblivious_reallocator.h"
#include "cosr/core/deamortized_reallocator.h"
#include "cosr/cost/cost_battery.h"
#include "cosr/metrics/run_harness.h"
#include "cosr/realloc/compacting_oracle.h"
#include "cosr/realloc/logging_compacting_reallocator.h"
#include "cosr/realloc/size_class_reallocator.h"
#include "cosr/storage/checkpoint_manager.h"
#include "cosr/workload/adversary.h"

namespace cosr {
namespace {

struct Row {
  std::string name;
  double worst_linear = 0;  // max single-op cost under f(w)=w
};

template <typename Realloc, typename... Args>
Row RunOne(const std::string& name, const Trace& trace,
           const CostBattery& battery, bool with_manager) {
  std::unique_ptr<CheckpointManager> manager;
  if (with_manager) manager = std::make_unique<CheckpointManager>();
  AddressSpace space(manager.get());
  Realloc realloc(&space);
  RunReport report = RunTrace(realloc, space, trace, battery);
  return Row{name, report.function("linear")->max_op_cost};
}

void Run() {
  bench::Banner(
      "E8: the worst-case lower bound (Lemma 3.7)",
      "every reallocator with a constant-factor footprint pays "
      "Omega(f(delta)) on some update of the adversarial sequence");
  CostBattery battery = MakeDefaultBattery();
  bench::Table table(
      {"delta", "algorithm", "worst op cost (linear f)", "/ f(delta)"});
  bool all_pay = true;
  for (const std::uint64_t delta : {512u, 2048u, 8192u}) {
    Trace trace = MakeLowerBoundTrace(delta);
    std::vector<Row> rows;
    rows.push_back(RunOne<CostObliviousReallocator>("cost-oblivious", trace,
                                                    battery, false));
    rows.push_back(RunOne<CheckpointedReallocator>("checkpointed", trace,
                                                   battery, true));
    rows.push_back(RunOne<DeamortizedReallocator>("deamortized", trace,
                                                  battery, true));
    rows.push_back(RunOne<LoggingCompactingReallocator>("log-compact", trace,
                                                        battery, false));
    rows.push_back(
        RunOne<SizeClassReallocator>("size-class", trace, battery, false));
    rows.push_back(
        RunOne<CompactingOracle>("oracle (footprint=V)", trace, battery,
                                 false));
    for (const Row& row : rows) {
      const double normalized = row.worst_linear / static_cast<double>(delta);
      all_pay &= normalized >= 0.2;
      table.AddRow({std::to_string(delta), row.name,
                    bench::Fmt(row.worst_linear, 0),
                    bench::Fmt(normalized, 2)});
    }
  }
  table.Print();
  bench::Verdict(all_pay,
                 "every implementation pays at least a constant fraction of "
                 "f(delta) on some single update, at every delta — the bound "
                 "is universal, not an artifact of one algorithm");
}

}  // namespace
}  // namespace cosr

int main() {
  cosr::Run();
  return 0;
}
