// E1 — Theorem 2.1(a) / Lemma 2.5: the cost-oblivious reallocator keeps the
// reserved footprint within (1 + O(eps)) of the live volume at all times,
// for every epsilon, and the ratio tightens as eps shrinks. Also prints the
// footprint/volume timeline (the Lemma 2.5 trajectory) for one run.

#include <cstdio>

#include "bench_util.h"
#include "cosr/storage/address_space.h"
#include "cosr/core/cost_oblivious_reallocator.h"
#include "cosr/cost/cost_battery.h"
#include "cosr/metrics/run_harness.h"
#include "cosr/workload/workload_generator.h"

namespace cosr {
namespace {

void Run() {
  bench::Banner("E1: footprint competitiveness (Theorem 2.1a, Lemma 2.5)",
                "footprint <= (1 + O(eps)) * V after every request");
  CostBattery battery = MakeDefaultBattery();
  Trace trace = MakeChurnTrace({.operations = 40000,
                                .target_live_volume = 4u << 20,
                                .min_size = 1,
                                .max_size = 4096,
                                .seed = 42});

  bench::Table table({"eps", "max footprint/V", "avg footprint/V",
                      "bound 1+4eps", "flushes", "moves/op"});
  bool all_within = true;
  double previous_max = 0;
  bool monotone = true;
  for (const double eps : {0.5, 0.25, 0.125, 0.0625}) {
    AddressSpace space;
    CostObliviousReallocator realloc(&space,
                                     CostObliviousReallocator::Options{eps});
    RunOptions options;
    options.min_volume_for_ratio = 1u << 20;
    RunReport report = RunTrace(realloc, space, trace, battery, options);
    const double bound = 1.0 + 4.0 * eps;
    all_within &= report.max_footprint_ratio <= bound;
    if (previous_max != 0 && report.max_footprint_ratio > previous_max) {
      monotone = false;
    }
    previous_max = report.max_footprint_ratio;
    table.AddRow({bench::Fmt(eps, 4), bench::Fmt(report.max_footprint_ratio),
                  bench::Fmt(report.avg_footprint_ratio), bench::Fmt(bound),
                  std::to_string(report.flushes),
                  bench::Fmt(static_cast<double>(report.moves) /
                                 static_cast<double>(report.operations),
                             2)});
  }
  table.Print();
  bench::Verdict(all_within && monotone,
                 "ratio stays within 1+O(eps) and tightens as eps shrinks");

  std::printf("\nfootprint/volume timeline (eps = 0.25, every 4000 ops):\n");
  AddressSpace space;
  CostObliviousReallocator realloc(&space,
                                   CostObliviousReallocator::Options{0.25});
  RunOptions options;
  options.timeline_every = 4000;
  RunReport report = RunTrace(realloc, space, trace, battery, options);
  bench::Table timeline({"operation", "volume", "reserved footprint", "ratio"});
  for (const TimelinePoint& p : report.timeline) {
    timeline.AddRow({std::to_string(p.operation), std::to_string(p.volume),
                     std::to_string(p.reserved_footprint),
                     bench::Fmt(static_cast<double>(p.reserved_footprint) /
                                static_cast<double>(p.volume))});
  }
  timeline.Print();
}

}  // namespace
}  // namespace cosr

int main() {
  cosr::Run();
  return 0;
}
