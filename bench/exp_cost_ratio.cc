// E2 — Theorem 2.1(b) / Lemma 2.6: one cost-oblivious execution is
// O((1/eps) log(1/eps))-competitive on reallocation cost for EVERY
// monotone subadditive cost function simultaneously. The same move stream
// is priced under the whole battery; the normalized column divides the
// measured ratio by (1/eps)*log2(1/eps) and should stay a small constant.

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "cosr/storage/address_space.h"
#include "cosr/core/cost_oblivious_reallocator.h"
#include "cosr/cost/cost_battery.h"
#include "cosr/metrics/run_harness.h"
#include "cosr/workload/workload_generator.h"

namespace cosr {
namespace {

double Envelope(double eps) {
  return (1.0 / eps) * std::max(1.0, std::log2(1.0 / eps));
}

void Run() {
  bench::Banner(
      "E2: cost-oblivious reallocation cost (Theorem 2.1b, Lemma 2.6)",
      "realloc cost <= O((1/eps) log(1/eps)) x allocation cost, for all "
      "subadditive f, with one oblivious execution");
  CostBattery battery = MakeDefaultBattery();
  Trace trace = MakeChurnTrace({.operations = 40000,
                                .target_live_volume = 4u << 20,
                                .min_size = 1,
                                .max_size = 4096,
                                .seed = 7});

  bool all_constant = true;
  for (const double eps : {0.5, 0.25, 0.125}) {
    AddressSpace space;
    CostObliviousReallocator realloc(&space,
                                     CostObliviousReallocator::Options{eps});
    RunReport report = RunTrace(realloc, space, trace, battery);
    std::printf("\neps = %.4f   (envelope (1/eps)log2(1/eps) = %.1f)\n", eps,
                Envelope(eps));
    bench::Table table({"cost function f", "alloc cost", "realloc cost",
                        "realloc/alloc (b)", "b / envelope"});
    for (const FunctionReport& fn : report.functions) {
      const double normalized = fn.realloc_ratio / Envelope(eps);
      all_constant &= normalized <= 4.0;
      table.AddRow({fn.name, bench::Fmt(fn.allocation_cost, 0),
                    bench::Fmt(fn.total_write_cost - fn.allocation_cost, 0),
                    bench::Fmt(fn.realloc_ratio),
                    bench::Fmt(normalized)});
    }
    table.Print();
  }
  bench::Verdict(all_constant,
                 "normalized ratio is a small constant for every f in Fsa "
                 "across the eps sweep — the algorithm never saw f");
}

}  // namespace
}  // namespace cosr

int main() {
  cosr::Run();
  return 0;
}
