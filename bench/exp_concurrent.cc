// EXP-CONCURRENT — thread-scaling of the concurrent service facade: items/s
// of ConcurrentShardedReallocator at W ∈ {1, 2, 4, 8} worker threads over
// K = 8 shards, against the single-threaded ShardedReallocator facade on
// the same shard layout.
//
// The shards' sub-problems are disjoint (private per-shard roots, views
// based at i * span), so worker threads share no mutable storage state and
// the only serialization is the MPSC queue hop. Per-shard op streams are
// identical across modes, which makes the W=1 run op-for-op comparable to
// the single-threaded facade: same moves, same bytes, same per-shard
// footprints — that identity is this experiment's CI guard.
//
// Writes BENCH_concurrent.json (run from the repo root to refresh the
// committed artifact; `hardware_threads` records the host, since thread
// scaling is only meaningful with >= W cores). --smoke shrinks the traces
// ~20x and turns the run into the CI gate: the exit code asserts the W=1
// concurrent mode matches the single-threaded facade's footprint/move/byte
// counts exactly and that no op failed in any cell.
//
// Usage: exp_concurrent [--smoke]

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <iterator>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "cosr/common/check.h"
#include "cosr/cost/cost_battery.h"
#include "cosr/metrics/cost_meter.h"
#include "cosr/realloc/factory.h"
#include "cosr/service/concurrent_sharded_reallocator.h"
#include "cosr/service/op_buffer.h"
#include "cosr/service/sharded_reallocator.h"
#include "cosr/storage/address_space.h"
#include "cosr/workload/scenario.h"

namespace cosr {
namespace {

using Clock = std::chrono::steady_clock;

constexpr std::uint32_t kShards = 8;
constexpr std::uint32_t kWorkerCounts[] = {1, 2, 4, 8};

struct Row {
  std::string scenario;
  std::string algorithm;
  std::uint32_t workers = 0;  // 0 = single-threaded facade
  /// Concurrent rows only: per-op Submit (the mutex queue hop per op) vs
  /// OpBuffer/SubmitMany over the lock-free remote queues.
  bool batched = false;
  std::uint64_t operations = 0;
  double wall_seconds = 0;
  double ops_per_sec = 0;
  std::uint64_t moves = 0;
  std::uint64_t bytes_moved = 0;
  std::uint64_t bytes_placed = 0;
  std::uint64_t volume_final = 0;
  std::uint64_t sum_reserved_final = 0;
  std::uint64_t sum_peak_reserved = 0;
  std::uint64_t global_max_end = 0;
  std::uint64_t failed_ops = 0;
  std::uint64_t batched_ops = 0;  // ops that arrived via remote queues
  std::vector<std::uint64_t> per_shard_reserved;
  std::vector<std::uint64_t> per_shard_peak;

  std::string Label() const {
    if (workers == 0) return "facade/1-thread";
    return "W=" + std::to_string(workers) + (batched ? " batched" : "");
  }
};

/// The single-threaded facade baseline, driven with the same per-op gauge
/// sampling the concurrent workers do (only the routed shard is read), so
/// wall clocks and per-shard peaks compare like for like.
Row RunFacade(const Scenario& scenario, const std::string& algorithm,
              const CostBattery& battery) {
  AddressSpace parent;
  CostMeter meter(&battery);
  parent.AddListener(&meter);

  ReallocatorSpec spec;
  spec.algorithm = algorithm;
  ShardedReallocator::Options options;
  options.shard_count = kShards;
  std::unique_ptr<ShardedReallocator> facade;
  COSR_CHECK_OK(ShardedReallocator::Make(spec, options, &parent, &facade));

  std::vector<std::uint64_t> peak(kShards, 0);
  const auto start = Clock::now();
  for (const Request& request : scenario.trace.requests()) {
    std::uint32_t target;
    if (request.type == Request::Type::kInsert) {
      target = facade->shard_for(request.id, request.size);
      COSR_CHECK_OK(facade->Insert(request.id, request.size));
    } else {
      target = facade->shard_for(request.id, 0);
      COSR_CHECK_OK(facade->Delete(request.id));
    }
    const std::uint64_t reserved = facade->shard(target).reserved_footprint();
    if (reserved > peak[target]) peak[target] = reserved;
  }
  facade->Quiesce();
  const double wall =
      std::chrono::duration<double>(Clock::now() - start).count();

  Row row;
  row.scenario = scenario.name;
  row.algorithm = algorithm;
  row.workers = 0;
  row.operations = scenario.trace.size();
  row.wall_seconds = wall;
  row.ops_per_sec = static_cast<double>(row.operations) / wall;
  row.moves = meter.moves();
  row.bytes_moved = meter.bytes_moved();
  row.bytes_placed = meter.bytes_placed();
  const ShardStats stats = facade->Stats();
  row.volume_final = stats.volume;
  row.sum_reserved_final = stats.sum_reserved_footprint;
  row.global_max_end = stats.global_max_end;
  for (std::uint32_t s = 0; s < kShards; ++s) {
    row.per_shard_reserved.push_back(stats.shards[s].reserved_footprint);
    row.per_shard_peak.push_back(peak[s]);
    row.sum_peak_reserved += peak[s];
  }
  parent.RemoveListener(&meter);
  return row;
}

Row RunConcurrent(const Scenario& scenario, const std::string& algorithm,
                  std::uint32_t workers, bool batched,
                  const CostBattery& battery) {
  ReallocatorSpec spec;
  spec.algorithm = algorithm;
  ConcurrentShardedReallocator::Options options;
  options.shard_count = kShards;
  options.worker_threads = workers;
  std::unique_ptr<ConcurrentShardedReallocator> facade;
  COSR_CHECK_OK(ConcurrentShardedReallocator::Make(spec, options, &facade));

  // Per-shard meters, merged after the drain (the aggregation-safe
  // listener pattern: each fires on its shard's worker thread only).
  std::vector<std::unique_ptr<CostMeter>> meters;
  for (std::uint32_t s = 0; s < kShards; ++s) {
    meters.push_back(std::make_unique<CostMeter>(&battery));
    facade->AddShardListener(s, meters[s].get());
  }

  const auto start = Clock::now();
  if (batched) {
    // The batched producer path: ops accumulate in a producer-local
    // OpBuffer and go out as SubmitMany batches over the lock-free
    // remote queues — one queue hop per batch per shard.
    OpBuffer buffer(facade.get(), OpBuffer::kMaxCapacity);
    for (const Request& request : scenario.trace.requests()) {
      COSR_CHECK_OK(buffer.Add(request));
    }
    COSR_CHECK_OK(buffer.Flush());
    COSR_CHECK_EQ(buffer.stats().ops_not_enqueued, 0u);
  } else {
    for (const Request& request : scenario.trace.requests()) {
      COSR_CHECK_OK(facade->Submit(request));
    }
  }
  facade->Quiesce();  // drains, then retires deferred work on the workers
  const double wall =
      std::chrono::duration<double>(Clock::now() - start).count();

  Row row;
  row.scenario = scenario.name;
  row.algorithm = algorithm;
  row.workers = workers;
  row.batched = batched;
  row.operations = scenario.trace.size();
  row.wall_seconds = wall;
  row.ops_per_sec = static_cast<double>(row.operations) / wall;
  CostMeter merged(&battery);
  for (const auto& meter : meters) merged.MergeFrom(*meter);
  row.moves = merged.moves();
  row.bytes_moved = merged.bytes_moved();
  row.bytes_placed = merged.bytes_placed();
  const ShardStats stats = facade->Stats();
  row.volume_final = stats.volume;
  row.sum_reserved_final = stats.sum_reserved_footprint;
  row.global_max_end = stats.global_max_end;
  for (std::uint32_t s = 0; s < kShards; ++s) {
    row.per_shard_reserved.push_back(stats.shards[s].reserved_footprint);
    row.per_shard_peak.push_back(stats.shards[s].peak_reserved_footprint);
    row.sum_peak_reserved += stats.shards[s].peak_reserved_footprint;
    row.failed_ops += stats.shards[s].failed_ops;
    row.batched_ops += stats.shards[s].batched_ops;
  }
  return row;
}

const Row* Find(const std::vector<Row>& rows, const std::string& scenario,
                const std::string& algorithm, std::uint32_t workers,
                bool batched = false) {
  for (const Row& row : rows) {
    if (row.scenario == scenario && row.algorithm == algorithm &&
        row.workers == workers && row.batched == batched) {
      return &row;
    }
  }
  return nullptr;
}

void WriteJson(const std::vector<Row>& rows, bool smoke) {
  std::FILE* json = std::fopen("BENCH_concurrent.json", "w");
  if (json == nullptr) {
    std::printf("cannot open BENCH_concurrent.json for writing\n");
    return;
  }
  std::fprintf(json,
               "{\n  \"schema_version\": 2,\n  \"smoke\": %s,\n"
               "  \"shard_count\": %u,\n  \"hardware_threads\": %u,\n",
               smoke ? "true" : "false", kShards,
               std::thread::hardware_concurrency());
  std::fprintf(json, "  \"rows\": [\n");
  // On a single-core host every wall-clock ratio is scheduler noise, so
  // the speedup column is recorded as 0.0 (the same "not applicable"
  // sentinel the facade rows use) rather than shipping numbers that look
  // like scaling measurements. hardware_threads tells readers which case
  // the artifact is.
  const bool scaling_meaningful = std::thread::hardware_concurrency() > 1;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    // Speedup compares against the same submit path's W=1 row, so the
    // batched column measures thread scaling, not batching itself (the
    // batched-vs-per-op ratio is the two paths' ops_per_sec at equal W).
    const Row* w1 = Find(rows, row.scenario, row.algorithm, 1, row.batched);
    const double speedup_vs_w1 =
        (scaling_meaningful && row.workers != 0 && w1 != nullptr &&
         w1->ops_per_sec > 0)
            ? row.ops_per_sec / w1->ops_per_sec
            : 0.0;
    std::fprintf(
        json,
        "    {\"scenario\": \"%s\", \"algorithm\": \"%s\", "
        "\"mode\": \"%s\", \"submit\": \"%s\", \"workers\": %u, "
        "\"shards\": %u, "
        "\"operations\": %llu, \"wall_seconds\": %.6f, "
        "\"ops_per_sec\": %.0f, \"speedup_vs_w1\": %.3f, "
        "\"moves\": %llu, \"bytes_moved\": %llu, \"bytes_placed\": %llu, "
        "\"volume_final\": %llu, \"sum_reserved_final\": %llu, "
        "\"sum_peak_reserved\": %llu, \"global_max_end\": %llu, "
        "\"failed_ops\": %llu, \"batched_ops\": %llu}%s\n",
        row.scenario.c_str(), row.algorithm.c_str(),
        row.workers == 0 ? "facade"
                         : (row.batched ? "concurrent-batched" : "concurrent"),
        row.workers == 0 ? "sync" : (row.batched ? "batched" : "per-op"),
        row.workers == 0 ? 1 : row.workers, kShards,
        static_cast<unsigned long long>(row.operations), row.wall_seconds,
        row.ops_per_sec, speedup_vs_w1,
        static_cast<unsigned long long>(row.moves),
        static_cast<unsigned long long>(row.bytes_moved),
        static_cast<unsigned long long>(row.bytes_placed),
        static_cast<unsigned long long>(row.volume_final),
        static_cast<unsigned long long>(row.sum_reserved_final),
        static_cast<unsigned long long>(row.sum_peak_reserved),
        static_cast<unsigned long long>(row.global_max_end),
        static_cast<unsigned long long>(row.failed_ops),
        static_cast<unsigned long long>(row.batched_ops),
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("wrote BENCH_concurrent.json (%zu rows)\n", rows.size());
}

bool CheckW1Identity(const Row& facade, const Row& w1) {
  bool ok = true;
  ok &= w1.moves == facade.moves;
  ok &= w1.bytes_moved == facade.bytes_moved;
  ok &= w1.bytes_placed == facade.bytes_placed;
  ok &= w1.volume_final == facade.volume_final;
  ok &= w1.sum_reserved_final == facade.sum_reserved_final;
  ok &= w1.sum_peak_reserved == facade.sum_peak_reserved;
  ok &= w1.global_max_end == facade.global_max_end;
  ok &= w1.per_shard_reserved == facade.per_shard_reserved;
  ok &= w1.per_shard_peak == facade.per_shard_peak;
  if (!ok) {
    std::printf("  IDENTITY BROKEN: %s/%s W=1 vs facade\n",
                w1.scenario.c_str(), w1.algorithm.c_str());
  }
  return ok;
}

}  // namespace
}  // namespace cosr

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  cosr::bench::Banner(
      "EXP-CONCURRENT — items/s vs worker threads over K=8 disjoint shards",
      "per-shard sub-problems are disjoint, so K reallocators parallelize "
      "with no cross-shard locking; 1-thread mode is op-for-op identical "
      "to the single-threaded facade");

  const unsigned hardware = std::thread::hardware_concurrency();
  if (hardware < 4) {
    std::printf(
        "note: only %u hardware thread(s) — wall-clock scaling numbers on "
        "this host measure queue overhead, not parallelism\n",
        hardware);
  }

  const cosr::ScenarioBatteryOptions options =
      smoke ? cosr::ScenarioBatteryOptions::Smoke()
            : cosr::ScenarioBatteryOptions();
  std::vector<cosr::Scenario> scenarios;
  for (cosr::Scenario& scenario : cosr::MakeScenarioBattery(options)) {
    if (scenario.name == "steady-churn" || scenario.name == "zipf-churn" ||
        scenario.name == "database-block-replay") {
      scenarios.push_back(std::move(scenario));
    }
  }
  COSR_CHECK_EQ(scenarios.size(), 3u);
  const cosr::CostBattery battery = cosr::MakeDefaultBattery();
  const std::vector<std::string> algorithms = {"cost-oblivious", "first-fit"};

  std::vector<cosr::Row> rows;
  bool ok = true;
  for (const cosr::Scenario& scenario : scenarios) {
    std::printf("\n-- %s (%zu requests) --\n", scenario.name.c_str(),
                scenario.trace.size());
    cosr::bench::Table table({"algorithm", "mode", "kops/s", "vs W=1",
                              "moves/op", "sum-peak-reserved", "failed"});
    for (const std::string& algorithm : algorithms) {
      rows.push_back(cosr::RunFacade(scenario, algorithm, battery));
      for (const bool batched : {false, true}) {
        for (const std::uint32_t workers : cosr::kWorkerCounts) {
          rows.push_back(cosr::RunConcurrent(scenario, algorithm, workers,
                                             batched, battery));
        }
      }
      const std::size_t cell_rows = 1 + 2 * std::size(cosr::kWorkerCounts);
      for (const cosr::Row* row = &rows[rows.size() - cell_rows];
           row <= &rows.back();
           ++row) {
        const cosr::Row* w1 =
            cosr::Find(rows, scenario.name, algorithm, 1, row->batched);
        const double vs_w1 = (row->workers != 0 && w1 != nullptr)
                                 ? row->ops_per_sec / w1->ops_per_sec
                                 : 0.0;
        table.AddRow(
            {algorithm, row->Label(),
             cosr::bench::Fmt(row->ops_per_sec / 1000.0, 0),
             row->workers == 0 ? "-" : cosr::bench::Fmt(vs_w1, 2),
             cosr::bench::Fmt(static_cast<double>(row->moves) /
                                  static_cast<double>(row->operations),
                              2),
             std::to_string(row->sum_peak_reserved),
             std::to_string(row->failed_ops)});
        ok &= row->failed_ops == 0;
      }
    }
    table.Print();
  }

  // The CI guard: W=1 concurrent mode — on BOTH submit paths — is
  // op-for-op identical to the single-threaded facade, per scenario and
  // algorithm. A single producer's per-shard op streams are order-
  // preserved through the remote queues, so batching may change nothing.
  std::printf("\nW=1 identity (per-op and batched) and W=4 scaling:\n");
  for (const cosr::Scenario& scenario : scenarios) {
    for (const std::string& algorithm : algorithms) {
      const cosr::Row* facade = cosr::Find(rows, scenario.name, algorithm, 0);
      const cosr::Row* w1 = cosr::Find(rows, scenario.name, algorithm, 1);
      const cosr::Row* w1_batched =
          cosr::Find(rows, scenario.name, algorithm, 1, /*batched=*/true);
      const cosr::Row* w4 = cosr::Find(rows, scenario.name, algorithm, 4);
      if (facade == nullptr || w1 == nullptr || w1_batched == nullptr ||
          w4 == nullptr) {
        ok = false;
        continue;
      }
      const bool identity = cosr::CheckW1Identity(*facade, *w1);
      const bool batched_identity = cosr::CheckW1Identity(*facade, *w1_batched);
      // The batched W=1 row must also have routed every op remotely.
      const bool all_remote = w1_batched->batched_ops == w1_batched->operations;
      if (!all_remote) {
        std::printf("  BATCHED PATH UNUSED: %s/%s (%llu of %llu ops remote)\n",
                    scenario.name.c_str(), algorithm.c_str(),
                    static_cast<unsigned long long>(w1_batched->batched_ops),
                    static_cast<unsigned long long>(w1_batched->operations));
      }
      ok &= identity && batched_identity && all_remote;
      std::printf(
          "  %-22s %-15s identity %s, batched identity %s, "
          "batched/per-op x%.2f, W4/W1 x%.2f\n",
          scenario.name.c_str(), algorithm.c_str(),
          identity ? "ok" : "BROKEN", batched_identity ? "ok" : "BROKEN",
          w1_batched->ops_per_sec / w1->ops_per_sec,
          w4->ops_per_sec / w1->ops_per_sec);
    }
  }

  cosr::WriteJson(rows, smoke);
  cosr::bench::Verdict(
      ok,
      "all cells ran with zero failed ops; W=1 concurrent mode — per-op "
      "and batched — matches the single-threaded facade's "
      "footprint/move/byte counts exactly");
  return ok ? 0 : 1;
}
