// EXP-CONCURRENT — thread-scaling and tail latency of the concurrent
// service facade: items/s of ConcurrentShardedReallocator at
// W ∈ {1, 2, 4, 8} worker threads over K = 8 shards, against the
// single-threaded ShardedReallocator facade on the same shard layout, plus
// an open-loop burst grid that ramps the offered rate past saturation.
//
// The shards' sub-problems are disjoint (private per-shard roots, views
// based at i * span), so worker threads share no mutable storage state and
// the only serialization is the MPSC queue hop. Per-shard op streams are
// identical across modes, which makes the W=1 run op-for-op comparable to
// the single-threaded facade: same moves, same bytes, same per-shard
// footprints — that identity is this experiment's CI guard.
//
// Every cell also reports per-op wall-clock latency percentiles from the
// service layer's own histograms (ShardStats.latency_*): total
// (submit -> completion), queue-wait (submit -> execution start), and
// service (the inner reallocator call alone). The burst grid drives the
// facade open-loop — timed arrivals at a fraction of the measured
// closed-loop capacity, bounded queues, bounded-retry drops — and is where
// the deamortization story becomes a latency claim: the checkpointed
// (amortized) inner algorithm takes its rebuild spikes on the serving
// path, the deamortized one spreads them, and the service-time p999/p50
// ratio is the measurable difference.
//
// Writes BENCH_concurrent.json (run from the repo root to refresh the
// committed artifact; `hardware_threads` records the host, since thread
// scaling is only meaningful with >= W cores). --smoke shrinks the traces
// ~20x and turns the run into the CI gate: the exit code asserts the W=1
// concurrent mode matches the single-threaded facade's footprint/move/byte
// counts exactly, that no op failed in any closed-loop cell, and that
// every cell's latency accounting is exact (tracked-op histogram counts ==
// executed operations).
//
// Usage: exp_concurrent [--smoke]

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <iterator>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "cosr/common/check.h"
#include "cosr/cost/cost_battery.h"
#include "cosr/metrics/cost_meter.h"
#include "cosr/metrics/latency_histogram.h"
#include "cosr/realloc/factory.h"
#include "cosr/service/concurrent_sharded_reallocator.h"
#include "cosr/service/op_buffer.h"
#include "cosr/service/sharded_reallocator.h"
#include "cosr/storage/address_space.h"
#include "cosr/workload/scenario.h"

namespace cosr {
namespace {

using Clock = std::chrono::steady_clock;

constexpr std::uint32_t kShards = 8;
constexpr std::uint32_t kWorkerCounts[] = {1, 2, 4, 8};
// The burst grid's fixed shape: the mid-grid worker count, a queue bound
// small enough for overload to bite within a smoke-size trace, bounded
// backpressure (two backoff rounds) before a drop, and offered rates
// straddling the measured closed-loop capacity.
constexpr std::uint32_t kBurstWorkers = 4;
constexpr std::size_t kBurstQueueCapacity = 1024;
constexpr std::size_t kBurstSubmitRetries = 2;
constexpr std::size_t kBurstBatch = 32;
constexpr double kBurstRatios[] = {0.5, 0.9, 1.2, 2.0};
// The algorithms whose latency distributions the burst grid contrasts:
// same structure, opposite tail behavior (amortized rebuilds vs spread).
const char* const kBurstAlgorithms[] = {"checkpointed", "deamortized"};

struct Row {
  std::string scenario;
  std::string algorithm;
  std::uint32_t workers = 0;  // 0 = single-threaded facade
  /// Concurrent rows only: per-op Submit (the mutex queue hop per op) vs
  /// OpBuffer/SubmitMany over the lock-free remote queues.
  bool batched = false;
  /// Open-loop burst rows: paced arrivals at offered_ratio x capacity.
  bool burst = false;
  double offered_ratio = 0;
  double offered_ops_per_sec = 0;  // the pacing target (burst rows only)
  double submit_seconds = 0;       // producer-side wall (burst rows only)
  std::uint64_t operations = 0;
  double wall_seconds = 0;
  double ops_per_sec = 0;
  std::uint64_t moves = 0;
  std::uint64_t bytes_moved = 0;
  std::uint64_t bytes_placed = 0;
  std::uint64_t volume_final = 0;
  std::uint64_t sum_reserved_final = 0;
  std::uint64_t sum_peak_reserved = 0;
  std::uint64_t global_max_end = 0;
  std::uint64_t failed_ops = 0;
  std::uint64_t batched_ops = 0;  // ops that arrived via remote queues
  std::uint64_t dropped_ops = 0;  // bounded-retry drops (burst rows only)
  std::vector<std::uint64_t> per_shard_reserved;
  std::vector<std::uint64_t> per_shard_peak;
  /// Wall-clock latency of executed insert/delete ops, merged over shards.
  LatencyHistogramSnapshot lat_total;
  LatencyHistogramSnapshot lat_queue;
  LatencyHistogramSnapshot lat_service;

  std::uint64_t executed() const { return operations - dropped_ops; }

  std::string Label() const {
    if (burst) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "burst %.1fx%s", offered_ratio,
                    batched ? " batched" : "");
      return buf;
    }
    if (workers == 0) return "facade/1-thread";
    return "W=" + std::to_string(workers) + (batched ? " batched" : "");
  }
};

void FillLatency(Row* row, const ShardStats& stats) {
  row->lat_total = stats.latency_total;
  row->lat_queue = stats.latency_queue_wait;
  row->lat_service = stats.latency_service;
}

/// The single-threaded facade baseline, driven with the same per-op gauge
/// sampling the concurrent workers do (only the routed shard is read), so
/// wall clocks and per-shard peaks compare like for like.
Row RunFacade(const Scenario& scenario, const std::string& algorithm,
              const CostBattery& battery) {
  AddressSpace parent;
  CostMeter meter(&battery);
  parent.AddListener(&meter);

  ReallocatorSpec spec;
  spec.algorithm = algorithm;
  ShardedReallocator::Options options;
  options.shard_count = kShards;
  std::unique_ptr<ShardedReallocator> facade;
  COSR_CHECK_OK(ShardedReallocator::Make(spec, options, &parent, &facade));

  std::vector<std::uint64_t> peak(kShards, 0);
  const auto start = Clock::now();
  for (const Request& request : scenario.trace.requests()) {
    std::uint32_t target;
    if (request.type == Request::Type::kInsert) {
      target = facade->shard_for(request.id, request.size);
      COSR_CHECK_OK(facade->Insert(request.id, request.size));
    } else {
      target = facade->shard_for(request.id, 0);
      COSR_CHECK_OK(facade->Delete(request.id));
    }
    const std::uint64_t reserved = facade->shard(target).reserved_footprint();
    if (reserved > peak[target]) peak[target] = reserved;
  }
  facade->Quiesce();
  const double wall =
      std::chrono::duration<double>(Clock::now() - start).count();

  Row row;
  row.scenario = scenario.name;
  row.algorithm = algorithm;
  row.workers = 0;
  row.operations = scenario.trace.size();
  row.wall_seconds = wall;
  row.ops_per_sec = static_cast<double>(row.operations) / wall;
  row.moves = meter.moves();
  row.bytes_moved = meter.bytes_moved();
  row.bytes_placed = meter.bytes_placed();
  const ShardStats stats = facade->Stats();
  row.volume_final = stats.volume;
  row.sum_reserved_final = stats.sum_reserved_footprint;
  row.global_max_end = stats.global_max_end;
  FillLatency(&row, stats);
  for (std::uint32_t s = 0; s < kShards; ++s) {
    row.per_shard_reserved.push_back(stats.shards[s].reserved_footprint);
    row.per_shard_peak.push_back(peak[s]);
    row.sum_peak_reserved += peak[s];
  }
  parent.RemoveListener(&meter);
  return row;
}

Row RunConcurrent(const Scenario& scenario, const std::string& algorithm,
                  std::uint32_t workers, bool batched,
                  const CostBattery& battery) {
  ReallocatorSpec spec;
  spec.algorithm = algorithm;
  ConcurrentShardedReallocator::Options options;
  options.shard_count = kShards;
  options.worker_threads = workers;
  std::unique_ptr<ConcurrentShardedReallocator> facade;
  COSR_CHECK_OK(ConcurrentShardedReallocator::Make(spec, options, &facade));

  // Per-shard meters, merged after the drain (the aggregation-safe
  // listener pattern: each fires on its shard's worker thread only).
  std::vector<std::unique_ptr<CostMeter>> meters;
  for (std::uint32_t s = 0; s < kShards; ++s) {
    meters.push_back(std::make_unique<CostMeter>(&battery));
    facade->AddShardListener(s, meters[s].get());
  }

  const auto start = Clock::now();
  if (batched) {
    // The batched producer path: ops accumulate in a producer-local
    // OpBuffer and go out as SubmitMany batches over the lock-free
    // remote queues — one queue hop per batch per shard.
    OpBuffer buffer(facade.get(), OpBuffer::kMaxCapacity);
    for (const Request& request : scenario.trace.requests()) {
      COSR_CHECK_OK(buffer.Add(request));
    }
    COSR_CHECK_OK(buffer.Flush());
    COSR_CHECK_EQ(buffer.stats().ops_not_enqueued, 0u);
  } else {
    for (const Request& request : scenario.trace.requests()) {
      COSR_CHECK_OK(facade->Submit(request));
    }
  }
  facade->Quiesce();  // drains, then retires deferred work on the workers
  const double wall =
      std::chrono::duration<double>(Clock::now() - start).count();

  Row row;
  row.scenario = scenario.name;
  row.algorithm = algorithm;
  row.workers = workers;
  row.batched = batched;
  row.operations = scenario.trace.size();
  row.wall_seconds = wall;
  row.ops_per_sec = static_cast<double>(row.operations) / wall;
  CostMeter merged(&battery);
  for (const auto& meter : meters) merged.MergeFrom(*meter);
  row.moves = merged.moves();
  row.bytes_moved = merged.bytes_moved();
  row.bytes_placed = merged.bytes_placed();
  const ShardStats stats = facade->Stats();
  row.volume_final = stats.volume;
  row.sum_reserved_final = stats.sum_reserved_footprint;
  row.global_max_end = stats.global_max_end;
  FillLatency(&row, stats);
  for (std::uint32_t s = 0; s < kShards; ++s) {
    row.per_shard_reserved.push_back(stats.shards[s].reserved_footprint);
    row.per_shard_peak.push_back(stats.shards[s].peak_reserved_footprint);
    row.sum_peak_reserved += stats.shards[s].peak_reserved_footprint;
    row.failed_ops += stats.shards[s].failed_ops;
    row.batched_ops += stats.shards[s].batched_ops;
  }
  return row;
}

/// One open-loop burst cell: arrivals paced at `offered_ratio` x the
/// measured closed-loop capacity against bounded queues with a
/// bounded-retry drop policy. The producer never waits for completions —
/// past saturation the queues fill, Submit burns its backoff budget, and
/// the overflow is dropped (counted, never silent). Dropped inserts make
/// some later deletes of the same id fail; burst rows therefore tolerate
/// failed ops where the closed-loop grid forbids them.
Row RunBurst(const Scenario& scenario, const std::string& algorithm,
             bool batched, double offered_ratio, double capacity_ops_per_sec,
             const CostBattery& battery) {
  ReallocatorSpec spec;
  spec.algorithm = algorithm;
  ConcurrentShardedReallocator::Options options;
  options.shard_count = kShards;
  options.worker_threads = kBurstWorkers;
  options.queue_capacity = kBurstQueueCapacity;
  options.submit_max_retries = kBurstSubmitRetries;
  std::unique_ptr<ConcurrentShardedReallocator> facade;
  COSR_CHECK_OK(ConcurrentShardedReallocator::Make(spec, options, &facade));

  std::vector<std::unique_ptr<CostMeter>> meters;
  for (std::uint32_t s = 0; s < kShards; ++s) {
    meters.push_back(std::make_unique<CostMeter>(&battery));
    facade->AddShardListener(s, meters[s].get());
  }

  const double offered = offered_ratio * capacity_ops_per_sec;
  const double interval_ns = 1e9 / offered;
  const auto& requests = scenario.trace.requests();
  const auto pace = [&](std::size_t i, const Clock::time_point& start) {
    // Deadlines are absolute (start + i * interval), so a late submission
    // doesn't stretch the whole schedule: an open-loop producer falls
    // behind and catches up, it does not silently lower the offered rate.
    const auto deadline =
        start + std::chrono::nanoseconds(
                    static_cast<std::int64_t>(interval_ns * i));
    while (Clock::now() < deadline) std::this_thread::yield();
  };

  const auto start = Clock::now();
  if (batched) {
    std::vector<Request> chunk;
    chunk.reserve(kBurstBatch);
    for (std::size_t i = 0; i < requests.size(); ++i) {
      chunk.push_back(requests[i]);
      if (chunk.size() == kBurstBatch || i + 1 == requests.size()) {
        // A batched producer releases each chunk when its LAST op's
        // arrival time comes due — the batch is the submission event.
        pace(i, start);
        facade->SubmitMany(chunk);  // drops are counted in Stats()
        chunk.clear();
      }
    }
  } else {
    for (std::size_t i = 0; i < requests.size(); ++i) {
      pace(i, start);
      facade->Submit(requests[i]);  // non-ok = counted drop; keep going
    }
  }
  const double submit_wall =
      std::chrono::duration<double>(Clock::now() - start).count();
  facade->Quiesce();
  const double wall =
      std::chrono::duration<double>(Clock::now() - start).count();

  Row row;
  row.scenario = scenario.name;
  row.algorithm = algorithm;
  row.workers = kBurstWorkers;
  row.batched = batched;
  row.burst = true;
  row.offered_ratio = offered_ratio;
  row.offered_ops_per_sec = offered;
  row.submit_seconds = submit_wall;
  row.operations = requests.size();
  row.wall_seconds = wall;
  CostMeter merged(&battery);
  for (const auto& meter : meters) merged.MergeFrom(*meter);
  row.moves = merged.moves();
  row.bytes_moved = merged.bytes_moved();
  row.bytes_placed = merged.bytes_placed();
  const ShardStats stats = facade->Stats();
  row.volume_final = stats.volume;
  row.sum_reserved_final = stats.sum_reserved_footprint;
  row.global_max_end = stats.global_max_end;
  row.dropped_ops = stats.dropped_ops;
  FillLatency(&row, stats);
  for (std::uint32_t s = 0; s < kShards; ++s) {
    row.per_shard_reserved.push_back(stats.shards[s].reserved_footprint);
    row.per_shard_peak.push_back(stats.shards[s].peak_reserved_footprint);
    row.sum_peak_reserved += stats.shards[s].peak_reserved_footprint;
    row.failed_ops += stats.shards[s].failed_ops;
    row.batched_ops += stats.shards[s].batched_ops;
  }
  // Achieved throughput = ops that actually executed over the full wall
  // (submission window plus drain) — the number that stops tracking the
  // offered rate at the collapse knee.
  row.ops_per_sec = static_cast<double>(row.executed()) / wall;
  return row;
}

const Row* Find(const std::vector<Row>& rows, const std::string& scenario,
                const std::string& algorithm, std::uint32_t workers,
                bool batched = false) {
  for (const Row& row : rows) {
    if (row.scenario == scenario && row.algorithm == algorithm &&
        row.workers == workers && row.batched == batched && !row.burst) {
      return &row;
    }
  }
  return nullptr;
}

void WriteJson(const std::vector<Row>& rows, bool smoke) {
  std::FILE* json = std::fopen("BENCH_concurrent.json", "w");
  if (json == nullptr) {
    std::printf("cannot open BENCH_concurrent.json for writing\n");
    return;
  }
  std::fprintf(json,
               "{\n  \"schema_version\": 3,\n  \"smoke\": %s,\n"
               "  \"shard_count\": %u,\n  \"hardware_threads\": %u,\n"
               "  \"burst_workers\": %u,\n  \"burst_queue_capacity\": %zu,\n",
               smoke ? "true" : "false", kShards,
               std::thread::hardware_concurrency(), kBurstWorkers,
               kBurstQueueCapacity);
  std::fprintf(json, "  \"rows\": [\n");
  // On a single-core host every wall-clock ratio is scheduler noise, so
  // the speedup column is recorded as 0.0 (the same "not applicable"
  // sentinel the facade rows use) rather than shipping numbers that look
  // like scaling measurements. hardware_threads tells readers which case
  // the artifact is.
  const bool scaling_meaningful = std::thread::hardware_concurrency() > 1;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    // Speedup compares against the same submit path's W=1 row, so the
    // batched column measures thread scaling, not batching itself (the
    // batched-vs-per-op ratio is the two paths' ops_per_sec at equal W).
    const Row* w1 = Find(rows, row.scenario, row.algorithm, 1, row.batched);
    const double speedup_vs_w1 =
        (scaling_meaningful && !row.burst && row.workers != 0 &&
         w1 != nullptr && w1->ops_per_sec > 0)
            ? row.ops_per_sec / w1->ops_per_sec
            : 0.0;
    const char* mode =
        row.burst ? (row.batched ? "burst-batched" : "burst")
                  : (row.workers == 0
                         ? "facade"
                         : (row.batched ? "concurrent-batched" : "concurrent"));
    std::fprintf(
        json,
        "    {\"scenario\": \"%s\", \"algorithm\": \"%s\", "
        "\"mode\": \"%s\", \"submit\": \"%s\", \"workers\": %u, "
        "\"shards\": %u, "
        "\"operations\": %llu, \"wall_seconds\": %.6f, "
        "\"ops_per_sec\": %.0f, \"speedup_vs_w1\": %.3f, "
        "\"moves\": %llu, \"bytes_moved\": %llu, \"bytes_placed\": %llu, "
        "\"volume_final\": %llu, \"sum_reserved_final\": %llu, "
        "\"sum_peak_reserved\": %llu, \"global_max_end\": %llu, "
        "\"failed_ops\": %llu, \"batched_ops\": %llu, "
        "\"offered_ratio\": %.2f, \"offered_ops_per_sec\": %.0f, "
        "\"submit_seconds\": %.6f, \"dropped_ops\": %llu, "
        "\"lat_ops\": %llu, "
        "\"lat_total_p50_ns\": %llu, \"lat_total_p90_ns\": %llu, "
        "\"lat_total_p99_ns\": %llu, \"lat_total_p999_ns\": %llu, "
        "\"lat_total_max_ns\": %llu, \"lat_total_mean_ns\": %.0f, "
        "\"lat_queue_p50_ns\": %llu, \"lat_queue_p99_ns\": %llu, "
        "\"lat_queue_p999_ns\": %llu, "
        "\"lat_service_p50_ns\": %llu, \"lat_service_p90_ns\": %llu, "
        "\"lat_service_p99_ns\": %llu, \"lat_service_p999_ns\": %llu, "
        "\"lat_service_max_ns\": %llu}%s\n",
        row.scenario.c_str(), row.algorithm.c_str(), mode,
        row.workers == 0 ? "sync" : (row.batched ? "batched" : "per-op"),
        row.workers == 0 ? 1 : row.workers, kShards,
        static_cast<unsigned long long>(row.operations), row.wall_seconds,
        row.ops_per_sec, speedup_vs_w1,
        static_cast<unsigned long long>(row.moves),
        static_cast<unsigned long long>(row.bytes_moved),
        static_cast<unsigned long long>(row.bytes_placed),
        static_cast<unsigned long long>(row.volume_final),
        static_cast<unsigned long long>(row.sum_reserved_final),
        static_cast<unsigned long long>(row.sum_peak_reserved),
        static_cast<unsigned long long>(row.global_max_end),
        static_cast<unsigned long long>(row.failed_ops),
        static_cast<unsigned long long>(row.batched_ops), row.offered_ratio,
        row.offered_ops_per_sec, row.submit_seconds,
        static_cast<unsigned long long>(row.dropped_ops),
        static_cast<unsigned long long>(row.lat_total.count),
        static_cast<unsigned long long>(row.lat_total.Percentile(0.50)),
        static_cast<unsigned long long>(row.lat_total.Percentile(0.90)),
        static_cast<unsigned long long>(row.lat_total.Percentile(0.99)),
        static_cast<unsigned long long>(row.lat_total.Percentile(0.999)),
        static_cast<unsigned long long>(row.lat_total.max()),
        row.lat_total.mean(),
        static_cast<unsigned long long>(row.lat_queue.Percentile(0.50)),
        static_cast<unsigned long long>(row.lat_queue.Percentile(0.99)),
        static_cast<unsigned long long>(row.lat_queue.Percentile(0.999)),
        static_cast<unsigned long long>(row.lat_service.Percentile(0.50)),
        static_cast<unsigned long long>(row.lat_service.Percentile(0.90)),
        static_cast<unsigned long long>(row.lat_service.Percentile(0.99)),
        static_cast<unsigned long long>(row.lat_service.Percentile(0.999)),
        static_cast<unsigned long long>(row.lat_service.max()),
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("wrote BENCH_concurrent.json (%zu rows)\n", rows.size());
}

bool CheckW1Identity(const Row& facade, const Row& w1) {
  bool ok = true;
  ok &= w1.moves == facade.moves;
  ok &= w1.bytes_moved == facade.bytes_moved;
  ok &= w1.bytes_placed == facade.bytes_placed;
  ok &= w1.volume_final == facade.volume_final;
  ok &= w1.sum_reserved_final == facade.sum_reserved_final;
  ok &= w1.sum_peak_reserved == facade.sum_peak_reserved;
  ok &= w1.global_max_end == facade.global_max_end;
  ok &= w1.per_shard_reserved == facade.per_shard_reserved;
  ok &= w1.per_shard_peak == facade.per_shard_peak;
  if (!ok) {
    std::printf("  IDENTITY BROKEN: %s/%s W=1 vs facade\n",
                w1.scenario.c_str(), w1.algorithm.c_str());
  }
  return ok;
}

/// The latency-accounting identity, every cell: each executed insert/delete
/// lands in all three histograms exactly once (total/service everywhere;
/// queue-wait only where a queue exists), and the split percentiles are
/// mutually consistent.
bool CheckLatencyAccounting(const Row& row) {
  const std::uint64_t executed = row.executed();
  bool ok = true;
  ok &= row.lat_total.count == executed;
  ok &= row.lat_service.count == executed;
  // The sync facade has no queue: its queue-wait histogram must be empty.
  ok &= row.lat_queue.count == (row.workers == 0 ? 0 : executed);
  ok &= row.lat_total.Percentile(0.999) >= row.lat_total.Percentile(0.5);
  ok &= row.lat_total.max() >= row.lat_service.Percentile(0.5);
  if (!ok) {
    std::printf(
        "  LATENCY ACCOUNTING BROKEN: %s/%s %s — executed %llu, counts "
        "total %llu queue %llu service %llu\n",
        row.scenario.c_str(), row.algorithm.c_str(), row.Label().c_str(),
        static_cast<unsigned long long>(executed),
        static_cast<unsigned long long>(row.lat_total.count),
        static_cast<unsigned long long>(row.lat_queue.count),
        static_cast<unsigned long long>(row.lat_service.count));
  }
  return ok;
}

}  // namespace
}  // namespace cosr

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  cosr::bench::Banner(
      "EXP-CONCURRENT — items/s and tail latency vs worker threads over "
      "K=8 disjoint shards",
      "per-shard sub-problems are disjoint, so K reallocators parallelize "
      "with no cross-shard locking; 1-thread mode is op-for-op identical "
      "to the single-threaded facade; the burst grid ramps an open-loop "
      "offered rate past saturation");

  const unsigned hardware = std::thread::hardware_concurrency();
  if (hardware < 4) {
    std::printf(
        "note: only %u hardware thread(s) — wall-clock scaling numbers on "
        "this host measure queue overhead, not parallelism\n",
        hardware);
  }

  const cosr::ScenarioBatteryOptions options =
      smoke ? cosr::ScenarioBatteryOptions::Smoke()
            : cosr::ScenarioBatteryOptions();
  std::vector<cosr::Scenario> scenarios;
  for (cosr::Scenario& scenario : cosr::MakeScenarioBattery(options)) {
    if (scenario.name == "steady-churn" || scenario.name == "zipf-churn" ||
        scenario.name == "database-block-replay") {
      scenarios.push_back(std::move(scenario));
    }
  }
  COSR_CHECK_EQ(scenarios.size(), 3u);
  const cosr::CostBattery battery = cosr::MakeDefaultBattery();
  const std::vector<std::string> algorithms = {"cost-oblivious", "first-fit"};

  std::vector<cosr::Row> rows;
  bool ok = true;
  for (const cosr::Scenario& scenario : scenarios) {
    std::printf("\n-- %s (%zu requests) --\n", scenario.name.c_str(),
                scenario.trace.size());
    cosr::bench::Table table({"algorithm", "mode", "kops/s", "vs W=1",
                              "p50 us", "p99 us", "p999 us", "failed"});
    for (const std::string& algorithm : algorithms) {
      rows.push_back(cosr::RunFacade(scenario, algorithm, battery));
      for (const bool batched : {false, true}) {
        for (const std::uint32_t workers : cosr::kWorkerCounts) {
          rows.push_back(cosr::RunConcurrent(scenario, algorithm, workers,
                                             batched, battery));
        }
      }
      const std::size_t cell_rows = 1 + 2 * std::size(cosr::kWorkerCounts);
      for (const cosr::Row* row = &rows[rows.size() - cell_rows];
           row <= &rows.back();
           ++row) {
        const cosr::Row* w1 =
            cosr::Find(rows, scenario.name, algorithm, 1, row->batched);
        const double vs_w1 = (row->workers != 0 && w1 != nullptr)
                                 ? row->ops_per_sec / w1->ops_per_sec
                                 : 0.0;
        table.AddRow(
            {algorithm, row->Label(),
             cosr::bench::Fmt(row->ops_per_sec / 1000.0, 0),
             row->workers == 0 ? "-" : cosr::bench::Fmt(vs_w1, 2),
             cosr::bench::Fmt(row->lat_total.Percentile(0.5) / 1000.0, 1),
             cosr::bench::Fmt(row->lat_total.Percentile(0.99) / 1000.0, 1),
             cosr::bench::Fmt(row->lat_total.Percentile(0.999) / 1000.0, 1),
             std::to_string(row->failed_ops)});
        ok &= row->failed_ops == 0;
      }
    }
    table.Print();
  }

  // The open-loop burst grid: steady-churn only (the trace whose offered
  // load is stationary), checkpointed vs deamortized inner algorithms,
  // both submit paths. Capacity is calibrated per (algorithm, path) by a
  // closed-loop run at the same W — those calibration rows join the
  // artifact as ordinary concurrent cells.
  const cosr::Scenario& burst_scenario = scenarios.front();
  COSR_CHECK_MSG(burst_scenario.name == "steady-churn",
                 "burst grid expects steady-churn first in the battery");
  std::printf("\n-- burst: open-loop %s, W=%u, queue=%zu, retries=%zu --\n",
              burst_scenario.name.c_str(), cosr::kBurstWorkers,
              cosr::kBurstQueueCapacity, cosr::kBurstSubmitRetries);
  cosr::bench::Table burst_table({"algorithm", "mode", "offered-k/s",
                                  "achieved-k/s", "dropped", "p50 us",
                                  "p999 us", "svc p999/p50"});
  for (const char* algorithm : cosr::kBurstAlgorithms) {
    for (const bool batched : {false, true}) {
      rows.push_back(cosr::RunConcurrent(burst_scenario, algorithm,
                                         cosr::kBurstWorkers, batched,
                                         battery));
      const double capacity = rows.back().ops_per_sec;
      for (const double ratio : cosr::kBurstRatios) {
        rows.push_back(cosr::RunBurst(burst_scenario, algorithm, batched,
                                      ratio, capacity, battery));
        const cosr::Row& row = rows.back();
        const double svc_p50 =
            static_cast<double>(row.lat_service.Percentile(0.5));
        const double svc_tail_ratio =
            svc_p50 > 0
                ? static_cast<double>(row.lat_service.Percentile(0.999)) /
                      svc_p50
                : 0.0;
        burst_table.AddRow(
            {algorithm, row.Label(),
             cosr::bench::Fmt(row.offered_ops_per_sec / 1000.0, 0),
             cosr::bench::Fmt(row.ops_per_sec / 1000.0, 0),
             std::to_string(row.dropped_ops),
             cosr::bench::Fmt(row.lat_total.Percentile(0.5) / 1000.0, 1),
             cosr::bench::Fmt(row.lat_total.Percentile(0.999) / 1000.0, 1),
             cosr::bench::Fmt(svc_tail_ratio, 1)});
      }
    }
  }
  burst_table.Print();

  // The CI guard: W=1 concurrent mode — on BOTH submit paths — is
  // op-for-op identical to the single-threaded facade, per scenario and
  // algorithm. A single producer's per-shard op streams are order-
  // preserved through the remote queues, so batching may change nothing.
  std::printf("\nW=1 identity (per-op and batched) and W=4 scaling:\n");
  for (const cosr::Scenario& scenario : scenarios) {
    for (const std::string& algorithm : algorithms) {
      const cosr::Row* facade = cosr::Find(rows, scenario.name, algorithm, 0);
      const cosr::Row* w1 = cosr::Find(rows, scenario.name, algorithm, 1);
      const cosr::Row* w1_batched =
          cosr::Find(rows, scenario.name, algorithm, 1, /*batched=*/true);
      const cosr::Row* w4 = cosr::Find(rows, scenario.name, algorithm, 4);
      if (facade == nullptr || w1 == nullptr || w1_batched == nullptr ||
          w4 == nullptr) {
        ok = false;
        continue;
      }
      const bool identity = cosr::CheckW1Identity(*facade, *w1);
      const bool batched_identity = cosr::CheckW1Identity(*facade, *w1_batched);
      // The batched W=1 row must also have routed every op remotely.
      const bool all_remote = w1_batched->batched_ops == w1_batched->operations;
      if (!all_remote) {
        std::printf("  BATCHED PATH UNUSED: %s/%s (%llu of %llu ops remote)\n",
                    scenario.name.c_str(), algorithm.c_str(),
                    static_cast<unsigned long long>(w1_batched->batched_ops),
                    static_cast<unsigned long long>(w1_batched->operations));
      }
      ok &= identity && batched_identity && all_remote;
      std::printf(
          "  %-22s %-15s identity %s, batched identity %s, "
          "batched/per-op x%.2f, W4/W1 x%.2f\n",
          scenario.name.c_str(), algorithm.c_str(),
          identity ? "ok" : "BROKEN", batched_identity ? "ok" : "BROKEN",
          w1_batched->ops_per_sec / w1->ops_per_sec,
          w4->ops_per_sec / w1->ops_per_sec);
    }
  }

  // Latency accounting must be exact in EVERY cell, burst included: the
  // histograms count executed ops only, so operations - dropped must match
  // all three counts (queue-wait empty on the sync facade).
  for (const cosr::Row& row : rows) ok &= cosr::CheckLatencyAccounting(row);

  cosr::WriteJson(rows, smoke);
  cosr::bench::Verdict(
      ok,
      "all closed-loop cells ran with zero failed ops; W=1 concurrent mode "
      "— per-op and batched — matches the single-threaded facade's "
      "footprint/move/byte counts exactly; latency histogram counts match "
      "executed ops in every cell");
  return ok ? 0 : 1;
}
