// EXP-ADDRESS-SPACE — op-level storage-engine microbench: the flat
// (slot-table + paged offset index) AddressSpace engine against the map
// (std::map + unordered_map) engine, at 1e3..1e6 live objects, for the
// three primitive ops and for the move-storm workload shaped like the
// paper's flush procedures (crunch right, unpack left — the Figure 3
// traffic), per-move vs batched ApplyMoves. The map engine doubles as the
// ordered-tree alternative for the neighbor index, so this bench is also
// the "pick the ordered structure with a micro bench" evidence.
//
// Writes BENCH_address_space.json (run from the repo root to refresh the
// committed artifact). Exit code asserts the flat engine's batched
// move-storm beats the map engine's per-move storm by the threshold:
// >= 2.0x in full mode (the PR acceptance bar), >= 1.0x in --smoke (the
// CI regression guard, generous to tolerate shared-runner noise).
//
// Usage: exp_address_space [--smoke]

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "cosr/storage/address_space.h"
#include "cosr/storage/checkpoint_manager.h"

namespace cosr {
namespace {

using Clock = std::chrono::steady_clock;

constexpr std::uint64_t kLength = 8;   // object size
constexpr std::uint64_t kStride = 32;  // slot pitch (>= 2 * kLength)

const char* EngineName(AddressSpace::Engine engine) {
  return engine == AddressSpace::Engine::kFlat ? "flat" : "map";
}

double Seconds(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct Row {
  std::string section;
  std::string engine;
  std::string mode;       // "-", "per-move", "batched"
  bool checkpointed = false;
  std::uint64_t n = 0;    // live objects
  std::uint64_t ops = 0;
  double seconds = 0;
  double ops_per_sec() const { return static_cast<double>(ops) / seconds; }
};

/// Section A: place / move / remove throughput at `n` live objects.
/// Layout: object i at [i*kStride, i*kStride + kLength); moves ping-pong
/// each object between the two halves of its slot (the sequential sweep
/// pattern of a flush).
std::vector<Row> RunPrimitiveOps(AddressSpace::Engine engine, std::uint64_t n,
                                 std::uint64_t move_ops) {
  std::vector<Row> rows;
  AddressSpace space(engine);

  auto start = Clock::now();
  for (std::uint64_t i = 0; i < n; ++i) {
    space.Place(i + 1, Extent{i * kStride, kLength});
  }
  rows.push_back({"place", EngineName(engine), "-", false, n, n,
                  Seconds(start)});

  std::uint64_t done = 0;
  bool upper = false;
  start = Clock::now();
  while (done < move_ops) {
    const std::uint64_t shift = upper ? 0 : kLength;
    for (std::uint64_t i = 0; i < n && done < move_ops; ++i, ++done) {
      space.Move(i + 1, Extent{i * kStride + shift, kLength});
    }
    upper = !upper;
  }
  rows.push_back({"move", EngineName(engine), "per-move", false, n, done,
                  Seconds(start)});

  start = Clock::now();
  for (std::uint64_t i = 0; i < n; ++i) {
    space.Remove(i + 1);
  }
  rows.push_back({"remove", EngineName(engine), "-", false, n, n,
                  Seconds(start)});
  return rows;
}

/// Section B: the move storm. All n objects sit packed at [i*kLength); one
/// round crunches them right into [base + i*kLength) (descending order,
/// like CrunchRight / flush step 2) and unpacks them back (ascending, like
/// flush step 3). `batched` stages each pass as one ApplyMoves plan;
/// `checkpointed` runs the durability model with a checkpoint after every
/// pass (passes are nonoverlapping, so one window per pass suffices).
Row RunMoveStorm(AddressSpace::Engine engine, bool batched, bool checkpointed,
                 std::uint64_t n, std::uint64_t target_moves) {
  std::unique_ptr<CheckpointManager> manager;
  if (checkpointed) manager = std::make_unique<CheckpointManager>();
  AddressSpace space(manager.get(), engine);
  for (std::uint64_t i = 0; i < n; ++i) {
    space.Place(i + 1, Extent{i * kLength, kLength});
  }
  const std::uint64_t base = n * kLength;  // disjoint upper arena

  std::vector<MovePlan> plan;
  plan.reserve(n);
  std::uint64_t moves = 0;
  const auto pass = [&](bool to_upper) {
    const std::uint64_t offset = to_upper ? base : 0;
    if (batched) {
      plan.clear();
      if (to_upper) {
        for (std::uint64_t i = n; i-- > 0;) {
          plan.push_back(MovePlan{i + 1, {offset + i * kLength, kLength}});
        }
      } else {
        for (std::uint64_t i = 0; i < n; ++i) {
          plan.push_back(MovePlan{i + 1, {offset + i * kLength, kLength}});
        }
      }
      space.ApplyMoves(plan);
    } else if (to_upper) {
      for (std::uint64_t i = n; i-- > 0;) {
        space.Move(i + 1, Extent{offset + i * kLength, kLength});
      }
    } else {
      for (std::uint64_t i = 0; i < n; ++i) {
        space.Move(i + 1, Extent{offset + i * kLength, kLength});
      }
    }
    if (checkpointed) space.Checkpoint();
    moves += n;
  };

  const auto start = Clock::now();
  bool to_upper = true;
  while (moves < target_moves) {
    pass(to_upper);
    to_upper = !to_upper;
  }
  Row row{"move-storm", EngineName(engine),
          batched ? "batched" : "per-move", checkpointed, n, moves,
          Seconds(start)};
  return row;
}

void WriteJson(const std::vector<Row>& rows, double storm_speedup,
               bool smoke) {
  std::FILE* json = std::fopen("BENCH_address_space.json", "w");
  if (json == nullptr) {
    std::printf("cannot open BENCH_address_space.json for writing\n");
    return;
  }
  std::fprintf(json, "{\n  \"schema_version\": 1,\n  \"smoke\": %s,\n",
               smoke ? "true" : "false");
  std::fprintf(json, "  \"storm_speedup_flat_batched_vs_map_per_move\": %.2f,\n",
               storm_speedup);
  std::fprintf(json, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::fprintf(json,
                 "    {\"section\": \"%s\", \"engine\": \"%s\", "
                 "\"mode\": \"%s\", \"checkpointed\": %s, \"n\": %llu, "
                 "\"ops\": %llu, \"seconds\": %.4f, \"ops_per_sec\": %.0f}%s\n",
                 row.section.c_str(), row.engine.c_str(), row.mode.c_str(),
                 row.checkpointed ? "true" : "false",
                 static_cast<unsigned long long>(row.n),
                 static_cast<unsigned long long>(row.ops), row.seconds,
                 row.ops_per_sec(), i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("wrote BENCH_address_space.json (%zu rows)\n", rows.size());
}

}  // namespace
}  // namespace cosr

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  cosr::bench::Banner(
      "EXP-ADDRESS-SPACE — flat vs map storage engine, per-move vs batched",
      "flush move storms should run at memory speed, not rb-tree speed");

  const std::vector<std::uint64_t> sizes =
      smoke ? std::vector<std::uint64_t>{1000, 20000}
            : std::vector<std::uint64_t>{1000, 10000, 100000, 1000000};
  const std::uint64_t move_ops = smoke ? 200000 : 2000000;

  std::vector<cosr::Row> rows;
  {
    cosr::bench::Table table(
        {"n", "engine", "place Mops/s", "move Mops/s", "remove Mops/s"});
    for (const std::uint64_t n : sizes) {
      for (const auto engine : {cosr::AddressSpace::Engine::kMap,
                                cosr::AddressSpace::Engine::kFlat}) {
        const std::vector<cosr::Row> r =
            cosr::RunPrimitiveOps(engine, n, move_ops);
        table.AddRow({std::to_string(n), cosr::EngineName(engine),
                      cosr::bench::Fmt(r[0].ops_per_sec() / 1e6, 2),
                      cosr::bench::Fmt(r[1].ops_per_sec() / 1e6, 2),
                      cosr::bench::Fmt(r[2].ops_per_sec() / 1e6, 2)});
        rows.insert(rows.end(), r.begin(), r.end());
      }
    }
    std::printf("\n-- primitive ops (object %llu B, slot pitch %llu B) --\n",
                static_cast<unsigned long long>(cosr::kLength),
                static_cast<unsigned long long>(cosr::kStride));
    table.Print();
  }

  const std::uint64_t storm_n = smoke ? 5000 : 100000;
  double map_per_move = 0;
  double flat_batched = 0;
  {
    cosr::bench::Table table(
        {"engine", "mode", "ckpt", "moves", "Mmoves/s"});
    for (const bool checkpointed : {false, true}) {
      for (const auto engine : {cosr::AddressSpace::Engine::kMap,
                                cosr::AddressSpace::Engine::kFlat}) {
        for (const bool batched : {false, true}) {
          const cosr::Row row = cosr::RunMoveStorm(engine, batched,
                                                   checkpointed, storm_n,
                                                   move_ops);
          table.AddRow({cosr::EngineName(engine), batched ? "batched" : "per-move",
                        checkpointed ? "yes" : "no", std::to_string(row.ops),
                        cosr::bench::Fmt(row.ops_per_sec() / 1e6, 2)});
          if (!checkpointed && engine == cosr::AddressSpace::Engine::kMap &&
              !batched) {
            map_per_move = row.ops_per_sec();
          }
          if (!checkpointed && engine == cosr::AddressSpace::Engine::kFlat &&
              batched) {
            flat_batched = row.ops_per_sec();
          }
          rows.push_back(row);
        }
      }
    }
    std::printf("\n-- move storm (flush-shaped crunch/unpack, n=%llu) --\n",
                static_cast<unsigned long long>(storm_n));
    table.Print();
  }

  const double speedup = flat_batched / map_per_move;
  cosr::WriteJson(rows, speedup, smoke);

  const double threshold = smoke ? 1.0 : 2.0;
  const bool ok = speedup >= threshold;
  cosr::bench::Verdict(
      ok, "flat+batched move storm at " + cosr::bench::Fmt(speedup, 2) +
              "x the map engine's per-move storm (threshold " +
              cosr::bench::Fmt(threshold, 1) + "x)");
  return ok ? 0 : 1;
}
