// E3 — Section 2 intuition: cost-function-specific strategies fail outside
// their regime, while one cost-oblivious algorithm covers both.
//   * logging-and-compacting: (2,2)-competitive for linear f, but a single
//     size-∆ deletion costs Θ(∆) under constant f (∆ unit objects move);
//   * the size-class specialist: O(1) moves per update (great for constant
//     f) but the moved volume per update is Θ(∆) (bad for linear f).

#include <cstdio>

#include "bench_util.h"
#include "cosr/storage/address_space.h"
#include "cosr/core/cost_oblivious_reallocator.h"
#include "cosr/cost/cost_battery.h"
#include "cosr/metrics/run_harness.h"
#include "cosr/realloc/logging_compacting_reallocator.h"
#include "cosr/realloc/size_class_reallocator.h"
#include "cosr/workload/adversary.h"

namespace cosr {
namespace {

void LoggingSide() {
  std::printf(
      "\n-- logging-and-compacting on its killer trace (rounds of: insert "
      "big(delta), insert delta units, delete old units, delete big) --\n");
  CostBattery battery = MakeDefaultBattery();
  bench::Table table({"delta", "algorithm", "linear realloc ratio",
                      "constant worst op cost", "constant worst / delta"});
  bool shape_holds = true;
  for (const std::uint64_t delta : {256u, 1024u, 4096u}) {
    Trace trace = MakeLoggingKillerTrace(delta, /*rounds=*/12);
    {
      AddressSpace space;
      LoggingCompactingReallocator realloc(&space);
      RunReport report = RunTrace(realloc, space, trace, battery);
      const double linear = report.function("linear")->realloc_ratio;
      const double worst = report.function("constant")->max_op_cost;
      shape_holds &= linear <= 3.0;  // (2,2)-competitive for linear f
      shape_holds &= worst >= 0.9 * static_cast<double>(delta);
      table.AddRow({std::to_string(delta), "log-compact", bench::Fmt(linear),
                    bench::Fmt(worst, 0),
                    bench::Fmt(worst / static_cast<double>(delta), 2)});
    }
    {
      AddressSpace space;
      CostObliviousReallocator realloc(&space);
      RunReport report = RunTrace(realloc, space, trace, battery);
      table.AddRow({std::to_string(delta), "cost-oblivious",
                    bench::Fmt(report.function("linear")->realloc_ratio),
                    bench::Fmt(report.function("constant")->max_op_cost, 0),
                    bench::Fmt(report.function("constant")->max_op_cost /
                                   static_cast<double>(delta),
                               2)});
    }
  }
  table.Print();
  bench::Verdict(shape_holds,
                 "log-compact: constant-f worst-op cost grows ~1x delta "
                 "while its linear ratio stays ~2 — one regime only");
}

void SizeClassSide() {
  std::printf(
      "\n-- size-class specialist on the cascade trace (gapless pyramid + "
      "alternating unit insert/delete) --\n");
  CostBattery battery = MakeDefaultBattery();
  bench::Table table({"delta (2^k)", "algorithm", "constant realloc ratio",
                      "linear realloc ratio"});
  bool shape_holds = true;
  for (const int max_order : {8, 10, 12}) {
    Trace trace = MakeSizeClassCascadeTrace(max_order, /*rounds=*/100);
    {
      AddressSpace space;
      SizeClassReallocator realloc(&space);
      RunReport report = RunTrace(realloc, space, trace, battery);
      const double constant = report.function("constant")->realloc_ratio;
      const double linear = report.function("linear")->realloc_ratio;
      shape_holds &= linear > 4.0 * constant;  // linear blows up, f=1 mild
      table.AddRow({std::to_string(1u << max_order), "size-class",
                    bench::Fmt(constant), bench::Fmt(linear)});
    }
    {
      AddressSpace space;
      CostObliviousReallocator realloc(&space);
      RunReport report = RunTrace(realloc, space, trace, battery);
      table.AddRow({std::to_string(1u << max_order), "cost-oblivious",
                    bench::Fmt(report.function("constant")->realloc_ratio),
                    bench::Fmt(report.function("linear")->realloc_ratio)});
    }
  }
  table.Print();
  bench::Verdict(shape_holds,
                 "size-class: linear-f ratio grows with delta (cascades move "
                 "geometric volume) while constant-f stays ~log delta");
}

}  // namespace
}  // namespace cosr

int main() {
  cosr::bench::Banner("E3: cost-function-specific baselines fail out of regime",
                      "log-compact is (2,2) for linear f but Theta(delta) per "
                      "deletion for constant f; the size-class structure is "
                      "O(1) moves for constant f but (2, Theta(log delta)) "
                      "for linear f");
  cosr::LoggingSide();
  cosr::SizeClassSide();
  return 0;
}
