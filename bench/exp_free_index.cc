// EXP-FREE-INDEX — fit-query and churn throughput of the two FreeList
// engines across gap-population sizes. The map-scan policy walks the
// ordered gap map (O(#gaps) per query: first-fit churn leaves mostly small
// remnant gaps, so mid/large requests scan far); the binned policy answers
// from the two-level bin bitmap in O(1). The populations here reproduce
// that remnant-skew: many small gaps, queries drawn wider than most gaps.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "cosr/alloc/free_list.h"
#include "cosr/common/random.h"

namespace cosr {
namespace {

using Clock = std::chrono::steady_clock;

constexpr std::uint64_t kMaxGapSize = 1024;
constexpr std::uint64_t kMaxQuerySize = 1536;  // ~1/3 of queries miss all bins

/// Builds a free list with exactly `gaps` isolated gaps of random size in
/// [1, kMaxGapSize], separated by 16-cell live blocks.
FreeList BuildPopulation(FreeList::Policy policy, std::size_t gaps,
                         std::uint64_t seed) {
  Rng rng(seed);
  FreeList list(policy);
  std::uint64_t offset = 0;
  std::vector<Extent> holes;
  holes.reserve(gaps);
  for (std::size_t i = 0; i < gaps; ++i) {
    const std::uint64_t hole = rng.UniformRange(1, kMaxGapSize);
    list.Reserve(offset, hole);  // placeholder, released below
    holes.push_back(Extent{offset, hole});
    offset += hole;
    list.Reserve(offset, 16);  // live separator keeps holes isolated
    offset += 16;
  }
  list.Reserve(offset, 16);  // keep the frontier beyond the last hole
  for (const Extent& hole : holes) list.Release(hole);
  return list;
}

/// Query throughput: FindFirstFit over random sizes, no mutation.
double MeasureQueries(const FreeList& list, std::uint64_t seed,
                      double min_seconds, std::size_t min_ops) {
  Rng rng(seed);
  std::size_t ops = 0;
  std::uint64_t sink = 0;
  const auto start = Clock::now();
  double elapsed = 0.0;
  do {
    for (std::size_t i = 0; i < 64; ++i) {
      const std::uint64_t size = rng.UniformRange(1, kMaxQuerySize);
      sink += list.FindFirstFit(size).value_or(list.frontier());
    }
    ops += 64;
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  } while (elapsed < min_seconds || ops < min_ops);
  // Keep the optimizer honest.
  if (sink == 0xdeadbeef) std::printf("\n");
  return static_cast<double>(ops) / elapsed;
}

/// Steady-state churn throughput: each op is one insert (find+reserve) or
/// one delete (release), keeping the population near its starting size.
double MeasureChurn(FreeList list, std::uint64_t seed, double min_seconds,
                    std::size_t min_ops) {
  Rng rng(seed);
  std::vector<Extent> live;
  live.reserve(4096);
  std::size_t ops = 0;
  const auto start = Clock::now();
  double elapsed = 0.0;
  do {
    for (std::size_t i = 0; i < 64; ++i) {
      if (live.empty() || rng.Bernoulli(0.5)) {
        const std::uint64_t size = rng.UniformRange(1, kMaxQuerySize);
        const std::uint64_t offset =
            list.FindFirstFit(size).value_or(list.frontier());
        list.Reserve(offset, size);
        live.push_back(Extent{offset, size});
      } else {
        const std::size_t k =
            static_cast<std::size_t>(rng.UniformU64(live.size()));
        list.Release(live[k]);
        live[k] = live.back();
        live.pop_back();
      }
    }
    ops += 64;
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  } while (elapsed < min_seconds || ops < min_ops);
  return static_cast<double>(ops) / elapsed;
}

}  // namespace
}  // namespace cosr

int main() {
  using cosr::FreeList;
  cosr::bench::Banner(
      "EXP-FREE-INDEX — binned bitmap index vs ordered-map scan",
      "fit queries drop from O(#gaps) to O(1); >=5x items/sec at 1e4 gaps");

  const std::size_t populations[] = {100, 1000, 10000, 100000, 1000000};
  cosr::bench::Table table({"gaps", "map q/s", "binned q/s", "q speedup",
                            "map churn/s", "binned churn/s", "churn speedup"});

  double speedup_at_1e4 = 0.0;
  std::FILE* json = std::fopen("BENCH_free_index.json", "w");
  if (json != nullptr) std::fprintf(json, "{\n  \"rows\": [\n");

  for (std::size_t i = 0; i < sizeof(populations) / sizeof(populations[0]);
       ++i) {
    const std::size_t gaps = populations[i];
    // Larger populations get fewer iterations: one map query may walk the
    // entire gap map.
    const double min_seconds = 0.15;
    const std::size_t min_ops = gaps >= 100000 ? 64 : 4096;

    const FreeList map_list =
        cosr::BuildPopulation(FreeList::Policy::kMapScan, gaps, 42 + gaps);
    const FreeList bin_list =
        cosr::BuildPopulation(FreeList::Policy::kBinned, gaps, 42 + gaps);

    const double map_q = cosr::MeasureQueries(map_list, 7, min_seconds, min_ops);
    const double bin_q = cosr::MeasureQueries(bin_list, 7, min_seconds, min_ops);
    const double map_c = cosr::MeasureChurn(
        cosr::BuildPopulation(FreeList::Policy::kMapScan, gaps, 42 + gaps), 9,
        min_seconds, min_ops);
    const double bin_c = cosr::MeasureChurn(
        cosr::BuildPopulation(FreeList::Policy::kBinned, gaps, 42 + gaps), 9,
        min_seconds, min_ops);

    const double q_speedup = bin_q / map_q;
    if (gaps == 10000) speedup_at_1e4 = q_speedup;
    table.AddRow({std::to_string(gaps), cosr::bench::Fmt(map_q, 0),
                  cosr::bench::Fmt(bin_q, 0), cosr::bench::Fmt(q_speedup, 1),
                  cosr::bench::Fmt(map_c, 0), cosr::bench::Fmt(bin_c, 0),
                  cosr::bench::Fmt(bin_c / map_c, 1)});
    if (json != nullptr) {
      std::fprintf(json,
                   "    {\"gaps\": %zu, \"map_queries_per_sec\": %.0f, "
                   "\"binned_queries_per_sec\": %.0f, "
                   "\"map_churn_per_sec\": %.0f, "
                   "\"binned_churn_per_sec\": %.0f}%s\n",
                   gaps, map_q, bin_q, map_c, bin_c,
                   i + 1 < sizeof(populations) / sizeof(populations[0]) ? ","
                                                                        : "");
    }
  }
  if (json != nullptr) {
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("wrote BENCH_free_index.json\n");
  }

  table.Print();
  cosr::bench::Verdict(speedup_at_1e4 >= 5.0,
                       "first-fit query speedup at 1e4 gaps: " +
                           cosr::bench::Fmt(speedup_at_1e4, 1) +
                           "x (target >= 5x)");
  return speedup_at_1e4 >= 5.0 ? 0 : 1;
}
