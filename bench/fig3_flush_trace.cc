// Figure 3 — a buffer flush, states (i)-(v): trigger, buffered objects
// evacuated to the overflow segment, payloads compacted (holes dropped),
// payloads unpacked to final positions, buffered objects placed (buffers
// empty). Captured live via the FlushTracer listener.

#include <cstdio>

#include "bench_util.h"
#include "cosr/storage/address_space.h"
#include "cosr/core/cost_oblivious_reallocator.h"
#include "cosr/viz/flush_tracer.h"

namespace cosr {
namespace {

void Run() {
  bench::Banner("Figure 3: a buffer flush, states (i)-(v)",
                "buffers evacuate, payloads compact and unpack, buffered "
                "objects land at their payload ends");
  AddressSpace space;
  CostObliviousReallocator realloc(&space,
                                   CostObliviousReallocator::Options{0.5});
  FlushTracer tracer(&realloc, &space, 96);

  // Recreate the figure's scenario: two size classes with buffered inserts
  // and a delete record, then a flush-triggering insert.
  (void)realloc.Insert(100, 24);  // class 5 payload (via new-class creation)
  (void)realloc.Insert(101, 48);  // class 6
  realloc.set_flush_listener(&tracer);
  (void)realloc.Insert(1, 10);    // "insert A" -> buffered
  (void)realloc.Insert(2, 6);     // "insert B"
  (void)realloc.Delete(2);        // "delete B" -> dummy record
  (void)realloc.Insert(3, 9);     // "insert C"
  // Fill remaining buffer space until the next insert must flush.
  ObjectId id = 200;
  while (realloc.flush_count() == 0) {
    (void)realloc.Insert(id++, 8);  // eventually "insert F" triggers
  }
  for (const std::string& frame : tracer.frames()) {
    std::printf("\n%s\n", frame.c_str());
  }
  bench::Verdict(realloc.flush_count() >= 1 &&
                     realloc.CheckInvariants().ok(),
                 "flushed state satisfies Invariants 2.2-2.4 with empty "
                 "buffers in the flushed classes");
}

}  // namespace
}  // namespace cosr

int main() {
  cosr::Run();
  return 0;
}
