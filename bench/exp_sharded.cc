// EXP-SHARDED — the service-layer scaling experiment: churn throughput and
// footprint blowup of ShardedReallocator as the shard count K grows.
//
// For each battery scenario (steady-churn, zipf-churn,
// database-block-replay) and inner algorithm (cost-oblivious, first-fit),
// runs the bare algorithm plus the facade at K ∈ {1, 4, 16} (hash routing;
// size-class routing additionally at K=4) and reports:
//   * ops/s — request throughput through the routing layer;
//   * max footprint ratio — peak sum-of-subrange reserved footprint over
//     live volume (the additive-composition view: shards cannot share
//     slack, so this is where sharding pays);
//   * blowup — that ratio normalized to the same cell at K=1.
//
// Writes BENCH_sharded.json (run from the repo root to refresh the
// committed artifact). --smoke shrinks the traces ~20x and turns the run
// into the CI regression guard: the exit code asserts the K=1 facade is a
// zero-cost wrapper (footprint/move/byte counts identical to the bare
// algorithm) and that every cell completed.
//
// Usage: exp_sharded [--smoke]

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "cosr/common/check.h"
#include "cosr/cost/cost_battery.h"
#include "cosr/metrics/run_harness.h"
#include "cosr/realloc/factory.h"
#include "cosr/service/sharded_reallocator.h"
#include "cosr/storage/address_space.h"
#include "cosr/workload/scenario.h"

namespace cosr {
namespace {

using Clock = std::chrono::steady_clock;

constexpr std::uint32_t kShardCounts[] = {1, 4, 16};

struct Config {
  std::string algorithm;
  std::uint32_t shards = 0;  // 0 = bare algorithm, no facade
  ShardRouting routing = ShardRouting::kHashId;

  std::string Label() const {
    if (shards == 0) return algorithm + "/bare";
    return algorithm + "/K" + std::to_string(shards) + "-" +
           ShardRoutingName(routing);
  }
};

struct Row {
  std::string scenario;
  Config config;
  RunReport report;
  double ops_per_sec = 0;
  std::uint64_t sum_subrange_footprint = 0;
  std::uint64_t global_max_end = 0;
};

std::vector<Config> MakeConfigs() {
  std::vector<Config> configs;
  for (const std::string algorithm : {"cost-oblivious", "first-fit"}) {
    configs.push_back({algorithm, 0, ShardRouting::kHashId});
    for (const std::uint32_t shards : kShardCounts) {
      configs.push_back({algorithm, shards, ShardRouting::kHashId});
    }
    configs.push_back({algorithm, 4, ShardRouting::kSizeClass});
  }
  return configs;
}

Row RunConfig(const Scenario& scenario, const Config& config,
              const CostBattery& battery) {
  AddressSpace parent;
  std::unique_ptr<Reallocator> realloc;
  ShardedReallocator* facade = nullptr;
  if (config.shards == 0) {
    ReallocatorSpec spec;
    spec.algorithm = config.algorithm;
    COSR_CHECK_OK(MakeReallocator(spec, &parent, &realloc));
  } else {
    ReallocatorSpec spec;
    spec.algorithm = config.algorithm;
    ShardedReallocator::Options options;
    options.shard_count = config.shards;
    options.routing = config.routing;
    std::unique_ptr<ShardedReallocator> sharded;
    COSR_CHECK_OK(ShardedReallocator::Make(spec, options, &parent, &sharded));
    facade = sharded.get();
    realloc = std::move(sharded);
  }

  RunOptions options;
  options.min_volume_for_ratio = std::min<std::uint64_t>(
      1024, std::max<std::uint64_t>(1, scenario.trace.max_live_volume() / 8));

  Row row;
  row.scenario = scenario.name;
  row.config = config;
  const auto start = Clock::now();
  row.report = RunTrace(*realloc, parent, scenario.trace, battery, options);
  const double wall =
      std::chrono::duration<double>(Clock::now() - start).count();
  row.ops_per_sec = static_cast<double>(row.report.operations) / wall;
  if (facade != nullptr) {
    const ShardStats stats = facade->Stats();
    row.sum_subrange_footprint = stats.sum_subrange_footprint;
    row.global_max_end = stats.global_max_end;
  } else {
    row.sum_subrange_footprint = parent.footprint();
    row.global_max_end = parent.footprint();
  }
  return row;
}

const Row* Find(const std::vector<Row>& rows, const std::string& scenario,
                const std::string& algorithm, std::uint32_t shards,
                ShardRouting routing) {
  for (const Row& row : rows) {
    if (row.scenario == scenario && row.config.algorithm == algorithm &&
        row.config.shards == shards &&
        (shards == 0 || row.config.routing == routing)) {
      return &row;
    }
  }
  return nullptr;
}

void WriteJson(const std::vector<Row>& rows, bool smoke) {
  std::FILE* json = std::fopen("BENCH_sharded.json", "w");
  if (json == nullptr) {
    std::printf("cannot open BENCH_sharded.json for writing\n");
    return;
  }
  std::fprintf(json, "{\n  \"schema_version\": 1,\n  \"smoke\": %s,\n",
               smoke ? "true" : "false");
  std::fprintf(json, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::fprintf(
        json,
        "    {\"scenario\": \"%s\", \"algorithm\": \"%s\", "
        "\"shards\": %u, \"routing\": \"%s\", \"facade\": %s, "
        "\"operations\": %llu, \"ops_per_sec\": %.0f, "
        "\"max_footprint_ratio\": %.4f, \"avg_footprint_ratio\": %.4f, "
        "\"moves\": %llu, \"bytes_moved\": %llu, "
        "\"sum_subrange_footprint\": %llu, \"global_max_end\": %llu}%s\n",
        row.scenario.c_str(), row.config.algorithm.c_str(),
        row.config.shards == 0 ? 1 : row.config.shards,
        row.config.shards == 0 ? "-" : ShardRoutingName(row.config.routing),
        row.config.shards == 0 ? "false" : "true",
        static_cast<unsigned long long>(row.report.operations),
        row.ops_per_sec, row.report.max_footprint_ratio,
        row.report.avg_footprint_ratio,
        static_cast<unsigned long long>(row.report.moves),
        static_cast<unsigned long long>(row.report.bytes_moved),
        static_cast<unsigned long long>(row.sum_subrange_footprint),
        static_cast<unsigned long long>(row.global_max_end),
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("wrote BENCH_sharded.json (%zu rows)\n", rows.size());
}

}  // namespace
}  // namespace cosr

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  cosr::bench::Banner(
      "EXP-SHARDED — churn throughput and footprint blowup vs shard count",
      "per-shard sub-problems compose additively: footprint pays K "
      "constant-overhead terms, cross-shard overlap is impossible, K=1 is "
      "a zero-cost wrapper");

  const cosr::ScenarioBatteryOptions options =
      smoke ? cosr::ScenarioBatteryOptions::Smoke()
            : cosr::ScenarioBatteryOptions();
  std::vector<cosr::Scenario> scenarios;
  for (cosr::Scenario& scenario : cosr::MakeScenarioBattery(options)) {
    if (scenario.name == "steady-churn" || scenario.name == "zipf-churn" ||
        scenario.name == "database-block-replay") {
      scenarios.push_back(std::move(scenario));
    }
  }
  COSR_CHECK_EQ(scenarios.size(), 3u);
  const std::vector<cosr::Config> configs = cosr::MakeConfigs();
  const cosr::CostBattery battery = cosr::MakeDefaultBattery();

  std::vector<cosr::Row> rows;
  rows.reserve(scenarios.size() * configs.size());
  for (const cosr::Scenario& scenario : scenarios) {
    std::printf("\n-- %s (%zu requests) --\n", scenario.name.c_str(),
                scenario.trace.size());
    cosr::bench::Table table({"config", "kops/s", "max fp", "fp vs K=1",
                              "moves/op", "sum-subrange", "global-end"});
    for (const cosr::Config& config : configs) {
      rows.push_back(cosr::RunConfig(scenario, config, battery));
      const cosr::Row& row = rows.back();
      const cosr::Row* k1 =
          cosr::Find(rows, scenario.name, config.algorithm, 1,
                     cosr::ShardRouting::kHashId);
      const double vs_k1 =
          (config.shards != 0 && k1 != nullptr)
              ? row.report.max_footprint_ratio / k1->report.max_footprint_ratio
              : 1.0;
      table.AddRow(
          {row.config.Label(), cosr::bench::Fmt(row.ops_per_sec / 1000.0, 0),
           cosr::bench::Fmt(row.report.max_footprint_ratio),
           cosr::bench::Fmt(vs_k1, 3),
           cosr::bench::Fmt(static_cast<double>(row.report.moves) /
                                static_cast<double>(row.report.operations),
                            2),
           std::to_string(row.sum_subrange_footprint),
           std::to_string(row.global_max_end)});
    }
    table.Print();
  }

  // The K=16 / K=1 footprint blowup (the number the ROADMAP records), and
  // the zero-cost-wrapper identity that doubles as the CI guard.
  bool ok = rows.size() == scenarios.size() * configs.size();
  std::printf("\nK=16/K=1 max-footprint blowup (hash routing):\n");
  for (const cosr::Scenario& scenario : scenarios) {
    for (const std::string algorithm : {"cost-oblivious", "first-fit"}) {
      const cosr::Row* k1 = cosr::Find(rows, scenario.name, algorithm, 1,
                                       cosr::ShardRouting::kHashId);
      const cosr::Row* k16 = cosr::Find(rows, scenario.name, algorithm, 16,
                                        cosr::ShardRouting::kHashId);
      const cosr::Row* bare = cosr::Find(rows, scenario.name, algorithm, 0,
                                         cosr::ShardRouting::kHashId);
      if (k1 == nullptr || k16 == nullptr || bare == nullptr) {
        ok = false;
        continue;
      }
      std::printf("  %-22s %-15s x%.3f  (throughput x%.2f)\n",
                  scenario.name.c_str(), algorithm.c_str(),
                  k16->report.max_footprint_ratio /
                      k1->report.max_footprint_ratio,
                  k16->ops_per_sec / k1->ops_per_sec);
      // Zero-cost wrapper: K=1 behind the facade replays the identical
      // operation sequence as the bare algorithm.
      ok &= k1->report.max_footprint_ratio == bare->report.max_footprint_ratio;
      ok &= k1->report.moves == bare->report.moves;
      ok &= k1->report.bytes_moved == bare->report.bytes_moved;
      ok &= k1->sum_subrange_footprint == bare->sum_subrange_footprint;
    }
  }

  cosr::WriteJson(rows, smoke);
  cosr::bench::Verdict(
      ok,
      "all cells ran; K=1 facade is operation-identical to the bare "
      "algorithm (footprint, moves, bytes)");
  return ok ? 0 : 1;
}
