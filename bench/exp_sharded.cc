// EXP-SHARDED — the service-layer scaling experiment: churn throughput and
// footprint blowup of ShardedReallocator as the shard count K grows, and
// what load-aware routing plus background rebalancing buy back.
//
// For each battery scenario (steady-churn, zipf-churn,
// database-block-replay, multi-tenant-skew) and inner algorithm
// (cost-oblivious, first-fit), runs the bare algorithm plus the facade at
// K ∈ {1, 4, 16} under hash routing, size-class routing (K=4),
// least-loaded routing (K=16), and the hash/least-loaded K=16 cells again
// with the cross-shard rebalancer stepping during the replay. Reports:
//   * ops/s — request throughput through the routing layer (the JSON also
//     carries each facade row's throughput relative to the same-K hash
//     cell: the routing-policy overhead column);
//   * max footprint ratio — peak sum-of-subrange reserved footprint over
//     live volume (the additive-composition view: shards cannot share
//     slack, so this is where sharding pays);
//   * blowup — that ratio normalized to the same cell at K=1;
//   * migrations / migrated bytes — the rebalancer's footprint-repair
//     work.
//
// Writes BENCH_sharded.json, schema v2 (run from the repo root to refresh
// the committed artifact). --smoke shrinks the traces ~20x and turns the
// run into the CI regression guard: the exit code asserts the K=1 facade
// is a zero-cost wrapper (footprint/move/byte counts identical to the bare
// algorithm) — with and without the rebalancer enabled — and that
// least-loaded routing never exceeds static hash's peak footprint on
// zipf-churn at K=16 for the first-fit baseline (the never-move algorithm
// where routing imbalance lands directly in the footprint).
//
// Usage: exp_sharded [--smoke]

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "cosr/common/check.h"
#include "cosr/cost/cost_battery.h"
#include "cosr/metrics/run_harness.h"
#include "cosr/realloc/factory.h"
#include "cosr/service/shard_rebalancer.h"
#include "cosr/service/sharded_reallocator.h"
#include "cosr/storage/address_space.h"
#include "cosr/workload/scenario.h"

namespace cosr {
namespace {

using Clock = std::chrono::steady_clock;

/// The rebalancer cells step every this many replayed requests.
constexpr std::uint64_t kRebalanceEvery = 32;

struct Config {
  std::string algorithm;
  std::uint32_t shards = 0;  // 0 = bare algorithm, no facade
  RoutingPolicy routing = RoutingPolicy::kHashId;
  bool rebalance = false;

  std::string Label() const {
    if (shards == 0) return algorithm + "/bare";
    return algorithm + "/K" + std::to_string(shards) + "-" +
           RoutingPolicyName(routing) + (rebalance ? "+rb" : "");
  }
};

struct Row {
  std::string scenario;
  Config config;
  RunReport report;
  double ops_per_sec = 0;
  std::uint64_t sum_subrange_footprint = 0;
  std::uint64_t max_shard_end = 0;
  std::uint64_t migrations = 0;
  std::uint64_t migrated_bytes = 0;
};

std::vector<Config> MakeConfigs() {
  std::vector<Config> configs;
  for (const std::string algorithm : {"cost-oblivious", "first-fit"}) {
    configs.push_back({algorithm, 0, RoutingPolicy::kHashId, false});
    for (const std::uint32_t shards : {1u, 4u, 16u}) {
      configs.push_back({algorithm, shards, RoutingPolicy::kHashId, false});
    }
    configs.push_back({algorithm, 4, RoutingPolicy::kSizeClass, false});
    configs.push_back({algorithm, 16, RoutingPolicy::kLeastLoaded, false});
    // The rebalancer cells: K=1 pins the zero-cost-wrapper identity (a
    // one-shard facade is always balanced), K=16 measures the repair.
    configs.push_back({algorithm, 1, RoutingPolicy::kHashId, true});
    configs.push_back({algorithm, 16, RoutingPolicy::kHashId, true});
    configs.push_back({algorithm, 16, RoutingPolicy::kLeastLoaded, true});
  }
  return configs;
}

Row RunConfig(const Scenario& scenario, const Config& config,
              const CostBattery& battery) {
  AddressSpace parent;
  std::unique_ptr<Reallocator> realloc;
  ShardedReallocator* facade = nullptr;
  if (config.shards == 0) {
    ReallocatorSpec spec;
    spec.algorithm = config.algorithm;
    COSR_CHECK_OK(MakeReallocator(spec, &parent, &realloc));
  } else {
    ReallocatorSpec spec;
    spec.algorithm = config.algorithm;
    ShardedReallocator::Options options;
    options.shard_count = config.shards;
    options.routing = config.routing;
    options.allow_migration = config.rebalance;
    std::unique_ptr<ShardedReallocator> sharded;
    COSR_CHECK_OK(ShardedReallocator::Make(spec, options, &parent, &sharded));
    facade = sharded.get();
    realloc = std::move(sharded);
  }

  RunOptions options;
  options.min_volume_for_ratio = std::min<std::uint64_t>(
      1024, std::max<std::uint64_t>(1, scenario.trace.max_live_volume() / 8));
  std::unique_ptr<ShardRebalancer> rebalancer;
  if (config.rebalance) {
    RebalanceOptions rebalance;
    // Slightly earlier than the library default (1.25): the peak-footprint
    // column records the worst instant, so a late trigger pays a hot
    // shard's whole excursion before the first migration lands. Going much
    // earlier (1.15) over-churns never-move layouts — migrated blocks that
    // find no destination gap extend the cold shard's frontier, raising
    // the very peak the drain was meant to shave.
    rebalance.hot_footprint_ratio = 1.2;
    rebalancer = std::make_unique<ShardRebalancer>(facade, rebalance);
    options.periodic_every = kRebalanceEvery;
    options.periodic = [&rebalancer] { rebalancer->Step(); };
  }

  Row row;
  row.scenario = scenario.name;
  row.config = config;
  const auto start = Clock::now();
  row.report = RunTrace(*realloc, parent, scenario.trace, battery, options);
  const double wall =
      std::chrono::duration<double>(Clock::now() - start).count();
  row.ops_per_sec = static_cast<double>(row.report.operations) / wall;
  if (facade != nullptr) {
    const ShardStats stats = facade->Stats();
    row.sum_subrange_footprint = stats.sum_subrange_footprint;
    row.max_shard_end = stats.max_shard_end;
    row.migrations = stats.migrations;
    row.migrated_bytes = stats.migrated_bytes;
  } else {
    row.sum_subrange_footprint = parent.footprint();
    row.max_shard_end = parent.footprint();
  }
  return row;
}

const Row* Find(const std::vector<Row>& rows, const std::string& scenario,
                const std::string& algorithm, std::uint32_t shards,
                RoutingPolicy routing, bool rebalance = false) {
  for (const Row& row : rows) {
    if (row.scenario == scenario && row.config.algorithm == algorithm &&
        row.config.shards == shards &&
        (shards == 0 || (row.config.routing == routing &&
                         row.config.rebalance == rebalance))) {
      return &row;
    }
  }
  return nullptr;
}

void WriteJson(const std::vector<Row>& rows, bool smoke) {
  std::FILE* json = std::fopen("BENCH_sharded.json", "w");
  if (json == nullptr) {
    std::printf("cannot open BENCH_sharded.json for writing\n");
    return;
  }
  std::fprintf(json, "{\n  \"schema_version\": 2,\n  \"smoke\": %s,\n",
               smoke ? "true" : "false");
  std::fprintf(json, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    // Routing-policy throughput overhead: this row's ops/s over the
    // same-scenario/algorithm/K hash cell without rebalancing (1.0 for
    // bare and for the hash baselines themselves).
    double ops_vs_hash = 1.0;
    if (row.config.shards != 0) {
      const Row* hash =
          Find(rows, row.scenario, row.config.algorithm, row.config.shards,
               RoutingPolicy::kHashId, /*rebalance=*/false);
      if (hash != nullptr && hash->ops_per_sec > 0) {
        ops_vs_hash = row.ops_per_sec / hash->ops_per_sec;
      }
    }
    std::fprintf(
        json,
        "    {\"scenario\": \"%s\", \"algorithm\": \"%s\", "
        "\"shards\": %u, \"routing\": \"%s\", \"rebalancer\": %s, "
        "\"facade\": %s, "
        "\"operations\": %llu, \"ops_per_sec\": %.0f, "
        "\"ops_vs_hash\": %.4f, "
        "\"max_footprint_ratio\": %.4f, \"avg_footprint_ratio\": %.4f, "
        "\"moves\": %llu, \"bytes_moved\": %llu, "
        "\"migrations\": %llu, \"migrated_bytes\": %llu, "
        "\"sum_subrange_footprint\": %llu, \"max_shard_end\": %llu}%s\n",
        row.scenario.c_str(), row.config.algorithm.c_str(),
        row.config.shards == 0 ? 1 : row.config.shards,
        row.config.shards == 0 ? "-" : RoutingPolicyName(row.config.routing),
        row.config.rebalance ? "true" : "false",
        row.config.shards == 0 ? "false" : "true",
        static_cast<unsigned long long>(row.report.operations),
        row.ops_per_sec, ops_vs_hash, row.report.max_footprint_ratio,
        row.report.avg_footprint_ratio,
        static_cast<unsigned long long>(row.report.moves),
        static_cast<unsigned long long>(row.report.bytes_moved),
        static_cast<unsigned long long>(row.migrations),
        static_cast<unsigned long long>(row.migrated_bytes),
        static_cast<unsigned long long>(row.sum_subrange_footprint),
        static_cast<unsigned long long>(row.max_shard_end),
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("wrote BENCH_sharded.json (%zu rows)\n", rows.size());
}

}  // namespace
}  // namespace cosr

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  cosr::bench::Banner(
      "EXP-SHARDED — footprint blowup vs shard count, and what load-aware "
      "routing + rebalancing buy back",
      "per-shard sub-problems compose additively: footprint pays K "
      "constant-overhead terms, cross-shard overlap is impossible, K=1 is "
      "a zero-cost wrapper (rebalancer included)");

  cosr::ScenarioBatteryOptions options =
      smoke ? cosr::ScenarioBatteryOptions::Smoke()
            : cosr::ScenarioBatteryOptions();
  // Keep the churn scenarios' size:volume shape scale-invariant (the Smoke
  // preset's volume/32, vs volume/256 in the battery default): a K=16
  // split leaves each shard ~1/16 of the live volume, so per-shard
  // variance — the regime this bench exists to measure — only shows when
  // single objects are comparable to a shard's share. With 4 KiB objects
  // under a 1 MiB volume the law of large numbers hides the routing
  // policies' differences that any smaller (or more skewed) trace exposes.
  options.max_object_size = options.churn_target_volume / 32;
  std::vector<cosr::Scenario> scenarios;
  for (cosr::Scenario& scenario : cosr::MakeScenarioBattery(options)) {
    if (scenario.name == "steady-churn" || scenario.name == "zipf-churn" ||
        scenario.name == "database-block-replay" ||
        scenario.name == "multi-tenant-skew") {
      scenarios.push_back(std::move(scenario));
    }
  }
  COSR_CHECK_EQ(scenarios.size(), 4u);
  const std::vector<cosr::Config> configs = cosr::MakeConfigs();
  const cosr::CostBattery battery = cosr::MakeDefaultBattery();

  std::vector<cosr::Row> rows;
  rows.reserve(scenarios.size() * configs.size());
  for (const cosr::Scenario& scenario : scenarios) {
    std::printf("\n-- %s (%zu requests) --\n", scenario.name.c_str(),
                scenario.trace.size());
    cosr::bench::Table table({"config", "kops/s", "max fp", "fp vs K=1",
                              "moves/op", "migrations", "sum-subrange",
                              "shard-end"});
    for (const cosr::Config& config : configs) {
      rows.push_back(cosr::RunConfig(scenario, config, battery));
      const cosr::Row& row = rows.back();
      const cosr::Row* k1 =
          cosr::Find(rows, scenario.name, config.algorithm, 1,
                     cosr::RoutingPolicy::kHashId);
      const double vs_k1 =
          (config.shards != 0 && k1 != nullptr)
              ? row.report.max_footprint_ratio / k1->report.max_footprint_ratio
              : 1.0;
      table.AddRow(
          {row.config.Label(), cosr::bench::Fmt(row.ops_per_sec / 1000.0, 0),
           cosr::bench::Fmt(row.report.max_footprint_ratio),
           cosr::bench::Fmt(vs_k1, 3),
           cosr::bench::Fmt(static_cast<double>(row.report.moves) /
                                static_cast<double>(row.report.operations),
                            2),
           std::to_string(row.migrations),
           std::to_string(row.sum_subrange_footprint),
           std::to_string(row.max_shard_end)});
    }
    table.Print();
  }

  // The K=16 / K=1 footprint blowup (the number the ROADMAP records), the
  // zero-cost-wrapper identities, and the least-loaded-vs-hash peak
  // footprint guard — all doubling as the CI gates.
  bool ok = rows.size() == scenarios.size() * configs.size();
  std::printf(
      "\nK=16/K=1 max-footprint blowup (hash / least-loaded+rb):\n");
  for (const cosr::Scenario& scenario : scenarios) {
    for (const std::string algorithm : {"cost-oblivious", "first-fit"}) {
      const cosr::Row* bare = cosr::Find(rows, scenario.name, algorithm, 0,
                                         cosr::RoutingPolicy::kHashId);
      const cosr::Row* k1 = cosr::Find(rows, scenario.name, algorithm, 1,
                                       cosr::RoutingPolicy::kHashId);
      const cosr::Row* k1_rb =
          cosr::Find(rows, scenario.name, algorithm, 1,
                     cosr::RoutingPolicy::kHashId, /*rebalance=*/true);
      const cosr::Row* k16_hash = cosr::Find(rows, scenario.name, algorithm,
                                             16, cosr::RoutingPolicy::kHashId);
      const cosr::Row* k16_llrb =
          cosr::Find(rows, scenario.name, algorithm, 16,
                     cosr::RoutingPolicy::kLeastLoaded, /*rebalance=*/true);
      if (bare == nullptr || k1 == nullptr || k1_rb == nullptr ||
          k16_hash == nullptr || k16_llrb == nullptr) {
        ok = false;
        continue;
      }
      std::printf("  %-22s %-15s x%.3f / x%.3f  (ll+rb throughput x%.2f)\n",
                  scenario.name.c_str(), algorithm.c_str(),
                  k16_hash->report.max_footprint_ratio /
                      k1->report.max_footprint_ratio,
                  k16_llrb->report.max_footprint_ratio /
                      k1->report.max_footprint_ratio,
                  k16_llrb->ops_per_sec / k16_hash->ops_per_sec);
      // Zero-cost wrapper: K=1 behind the facade replays the identical
      // operation sequence as the bare algorithm — and the rebalancer
      // must not disturb that (a one-shard facade is always balanced).
      for (const cosr::Row* wrapped : {k1, k1_rb}) {
        ok &= wrapped->report.max_footprint_ratio ==
              bare->report.max_footprint_ratio;
        ok &= wrapped->report.moves == bare->report.moves;
        ok &= wrapped->report.bytes_moved == bare->report.bytes_moved;
        ok &= wrapped->sum_subrange_footprint == bare->sum_subrange_footprint;
      }
      ok &= k1_rb->migrations == 0;
    }
  }
  // Load-aware routing guard: on the heavy-tail churn scenario at K=16,
  // least-loaded must never exceed static hash's peak reserved footprint.
  // Gated on first-fit only: that never-move baseline is where routing
  // imbalance lands directly in the footprint, so the comparison is
  // deterministic and meaningful. Cost-oblivious self-repairs its layout
  // regardless of routing, leaving the two peaks within noise of each
  // other — not a property worth asserting.
  for (const std::string algorithm : {"first-fit"}) {
    const cosr::Row* hash = cosr::Find(rows, "zipf-churn", algorithm, 16,
                                       cosr::RoutingPolicy::kHashId);
    const cosr::Row* ll = cosr::Find(rows, "zipf-churn", algorithm, 16,
                                     cosr::RoutingPolicy::kLeastLoaded);
    if (hash == nullptr || ll == nullptr) {
      ok = false;
      continue;
    }
    const bool bounded = ll->report.max_reserved_footprint <=
                         hash->report.max_reserved_footprint;
    if (!bounded) {
      std::printf(
          "  GUARD FAILED: zipf-churn K16 %s least-loaded peak %llu > "
          "hash peak %llu\n",
          algorithm.c_str(),
          static_cast<unsigned long long>(ll->report.max_reserved_footprint),
          static_cast<unsigned long long>(
              hash->report.max_reserved_footprint));
    }
    ok &= bounded;
  }

  cosr::WriteJson(rows, smoke);
  cosr::bench::Verdict(
      ok,
      "all cells ran; K=1 facade (with and without rebalancer) is "
      "operation-identical to the bare algorithm; least-loaded stays "
      "within hash's peak footprint on zipf-churn K=16");
  return ok ? 0 : 1;
}
