#!/usr/bin/env python3
"""Validates every committed BENCH_*.json at the repo root.

Each artifact must parse as JSON and carry the schema its consumers (the
README tables, the ROADMAP perf-trajectory entries, and the CI smoke
asserts) expect. Files this script does not know get the generic check
only (valid JSON object) plus a warning, so new artifacts fail soft until
their schema is registered here.

Usage: python3 tools/check_bench_json.py [repo_root]
Exit code 0 when every file validates, 1 otherwise.
"""

import json
import pathlib
import sys


def require(condition, path, message):
    if not condition:
        raise AssertionError(f"{path.name}: {message}")


def check_rows(data, path, required_keys, min_rows=1):
    rows = data.get("rows")
    require(isinstance(rows, list), path, "'rows' must be a list")
    require(len(rows) >= min_rows, path,
            f"expected >= {min_rows} rows, found {len(rows)}")
    for i, row in enumerate(rows):
        require(isinstance(row, dict), path, f"row {i} is not an object")
        missing = set(required_keys) - row.keys()
        require(not missing, path, f"row {i} missing keys {sorted(missing)}")


def check_micro(data, path):
    # google-benchmark's native format.
    require("context" in data, path, "missing 'context'")
    benchmarks = data.get("benchmarks")
    require(isinstance(benchmarks, list) and benchmarks, path,
            "'benchmarks' must be a non-empty list")
    names = {b.get("name", "") for b in benchmarks}
    require(any(n.startswith("churn/") for n in names), path,
            "no churn/* benchmarks found")


def check_free_index(data, path):
    check_rows(data, path, {
        "gaps", "binned_queries_per_sec", "map_queries_per_sec",
        "binned_churn_per_sec", "map_churn_per_sec",
    })


def check_address_space(data, path):
    require(data.get("schema_version") == 1, path, "schema_version != 1")
    require("storm_speedup_flat_batched_vs_map_per_move" in data, path,
            "missing storm speedup summary key")
    check_rows(data, path,
               {"section", "engine", "mode", "n", "ops", "ops_per_sec"})


def check_scenarios(data, path):
    require(data.get("schema_version") == 2, path, "schema_version != 2")
    check_rows(data, path, {
        "scenario", "algorithm", "policy", "discipline", "shards", "routing",
        "operations", "max_footprint_ratio", "avg_footprint_ratio",
        "final_footprint_ratio", "max_reserved_footprint", "max_volume",
        "moves", "bytes_moved", "bytes_placed", "linear_cost_ratio",
        "linear_realloc_ratio", "wall_seconds", "ops_per_sec",
    })
    scenarios = {r["scenario"] for r in data["rows"]}
    for expected in ("steady-churn", "zipf-churn", "database-block-replay",
                     "multi-tenant-skew"):
        require(expected in scenarios, path, f"scenario '{expected}' missing")


def check_sharded(data, path):
    # v2 adds the routing-policy/rebalancer axes (least-loaded routing,
    # "+rb" cells with migration counts, throughput relative to same-K
    # hash) and replaces the misleading global_max_end — absolute
    # shard-base offsets at K>1 — with the max shard-local end.
    require(data.get("schema_version") == 2, path, "schema_version != 2")
    require(data.get("smoke") is False, path,
            "committed artifact is a --smoke run; regenerate full-size")
    check_rows(data, path, {
        "scenario", "algorithm", "shards", "routing", "rebalancer", "facade",
        "operations", "ops_per_sec", "ops_vs_hash", "max_footprint_ratio",
        "moves", "bytes_moved", "migrations", "migrated_bytes",
        "sum_subrange_footprint", "max_shard_end",
    })
    scenarios = {r["scenario"] for r in data["rows"]}
    for expected in ("steady-churn", "zipf-churn", "database-block-replay",
                     "multi-tenant-skew"):
        require(expected in scenarios, path, f"scenario '{expected}' missing")
    cells = {(r["shards"], r["routing"], r["rebalancer"])
             for r in data["rows"]}
    for cell in ((16, "hash", False), (16, "least-loaded", False),
                 (16, "hash", True), (16, "least-loaded", True),
                 (1, "hash", True)):
        require(cell in cells, path,
                f"K={cell[0]} routing={cell[1]} rebalancer={cell[2]} "
                "row missing")
    for row in data["rows"]:
        if row["shards"] == 1 or not row["rebalancer"]:
            require(row["migrations"] == 0, path,
                    f"row {row['scenario']}/{row['algorithm']}"
                    f"/K={row['shards']}/{row['routing']}: migrations "
                    "without an active rebalancer (or on one shard)")


def check_concurrent(data, path):
    # v2 added the submit-path axis: every worker count is measured twice
    # (per-op mutex queue vs batched lock-free remote queues), with the
    # "submit" and "batched_ops" columns distinguishing the rows. v3 adds
    # per-op wall-clock latency columns on every row (total / queue-wait /
    # service split from the service layer's own histograms) and the
    # open-loop burst grid: paced arrivals at a fraction of the measured
    # closed-loop capacity against bounded queues with a bounded-retry
    # drop policy, checkpointed vs deamortized inner algorithms.
    require(data.get("schema_version") == 3, path, "schema_version != 3")
    # The committed artifact must be the full-size run; a --smoke run from
    # the repo root would silently clobber it otherwise.
    require(data.get("smoke") is False, path,
            "committed artifact is a --smoke run; regenerate full-size")
    require(isinstance(data.get("hardware_threads"), int), path,
            "missing 'hardware_threads' (scaling context)")
    require(isinstance(data.get("shard_count"), int), path,
            "missing 'shard_count'")
    require(isinstance(data.get("burst_workers"), int), path,
            "missing 'burst_workers'")
    require(isinstance(data.get("burst_queue_capacity"), int), path,
            "missing 'burst_queue_capacity'")
    check_rows(data, path, {
        "scenario", "algorithm", "mode", "submit", "workers", "shards",
        "operations", "wall_seconds", "ops_per_sec", "speedup_vs_w1",
        "moves", "bytes_moved", "bytes_placed", "volume_final",
        "sum_reserved_final", "sum_peak_reserved", "global_max_end",
        "failed_ops", "batched_ops", "offered_ratio", "offered_ops_per_sec",
        "submit_seconds", "dropped_ops", "lat_ops",
        "lat_total_p50_ns", "lat_total_p90_ns", "lat_total_p99_ns",
        "lat_total_p999_ns", "lat_total_max_ns", "lat_total_mean_ns",
        "lat_queue_p50_ns", "lat_queue_p99_ns", "lat_queue_p999_ns",
        "lat_service_p50_ns", "lat_service_p90_ns", "lat_service_p99_ns",
        "lat_service_p999_ns", "lat_service_max_ns",
    })
    cells = {(r["mode"], r["submit"], r["workers"]) for r in data["rows"]}
    require(("facade", "sync", 1) in cells, path,
            "single-threaded facade row missing")
    for workers in (1, 2, 4, 8):
        require(("concurrent", "per-op", workers) in cells, path,
                f"concurrent per-op W={workers} row missing")
        require(("concurrent-batched", "batched", workers) in cells, path,
                f"concurrent batched W={workers} row missing")
    burst_cells = {(r["algorithm"], r["submit"], r["offered_ratio"])
                   for r in data["rows"] if r["mode"].startswith("burst")}
    for algorithm in ("checkpointed", "deamortized"):
        for submit in ("per-op", "batched"):
            for ratio in (0.5, 0.9, 1.2, 2.0):
                require((algorithm, submit, ratio) in burst_cells, path,
                        f"burst {algorithm}/{submit}/{ratio}x row missing")
    for row in data["rows"]:
        burst = row["mode"].startswith("burst")
        label = (f"row {row['scenario']}/{row['algorithm']}"
                 f"/{row['mode']}/{row['submit']}/W={row['workers']}")
        executed = row["operations"] - row["dropped_ops"]
        if burst:
            # Burst rows may drop (bounded-retry overload policy) and a
            # dropped insert makes a later delete of that id fail — both
            # are the measured overload behavior, not errors. Everything
            # that did execute must be accounted for exactly.
            require(row["failed_ops"] <= row["dropped_ops"], path,
                    f"{label}: more failed ops than drops can explain")
            require(row["offered_ratio"] > 0, path,
                    f"{label}: burst row without an offered ratio")
        else:
            require(row["failed_ops"] == 0, path, f"{label} has failed ops")
            require(row["dropped_ops"] == 0, path,
                    f"{label}: closed-loop row dropped ops")
            require(row["offered_ratio"] == 0, path,
                    f"{label}: non-burst row carries an offered ratio")
        if row["submit"] == "batched":
            # Every delivered op in a batched row must have travelled the
            # remote queues — less means the batched path silently fell
            # back to something else.
            require(row["batched_ops"] == executed, path,
                    f"{label}: batched_ops != delivered operations")
        else:
            require(row["batched_ops"] == 0, path,
                    f"{label}: non-batched row reports batched_ops")
        # Latency accounting: every executed op is in the histograms
        # exactly once, and each percentile family is monotone in q.
        require(row["lat_ops"] == executed, path,
                f"{label}: lat_ops != executed operations")
        for family in ("lat_total", "lat_service"):
            quantiles = [row[f"{family}_p50_ns"], row[f"{family}_p90_ns"],
                         row[f"{family}_p99_ns"], row[f"{family}_p999_ns"],
                         row[f"{family}_max_ns"]]
            require(quantiles == sorted(quantiles), path,
                    f"{label}: {family} percentiles not monotone")
            require(quantiles[-1] > 0, path,
                    f"{label}: {family} recorded nothing")
        queue = [row["lat_queue_p50_ns"], row["lat_queue_p99_ns"],
                 row["lat_queue_p999_ns"]]
        require(queue == sorted(queue), path,
                f"{label}: lat_queue percentiles not monotone")
        if row["mode"] == "facade":
            # The sync facade has no queue; its queue-wait split is empty.
            require(queue == [0, 0, 0], path,
                    f"{label}: sync facade reports queue wait")
    # The deamortization headline as a latency claim: at every offered
    # rate up to and past saturation (the 2.0x overload cells are excluded
    # — a drop-storm's tail measures the drop policy, not the algorithm),
    # the deamortized inner algorithm's service-time tail ratio p999/p50
    # must not exceed the checkpointed (amortized) one's in the matched
    # burst cell.
    burst_rows = {(r["algorithm"], r["submit"], r["offered_ratio"]): r
                  for r in data["rows"] if r["mode"].startswith("burst")}
    for submit in ("per-op", "batched"):
        for ratio in (0.5, 0.9, 1.2):
            chk = burst_rows[("checkpointed", submit, ratio)]
            deam = burst_rows[("deamortized", submit, ratio)]
            chk_tail = chk["lat_service_p999_ns"] / max(
                chk["lat_service_p50_ns"], 1)
            deam_tail = deam["lat_service_p999_ns"] / max(
                deam["lat_service_p50_ns"], 1)
            require(deam_tail <= chk_tail, path,
                    f"burst {submit}/{ratio}x: deamortized service tail "
                    f"p999/p50 ({deam_tail:.1f}) exceeds checkpointed "
                    f"({chk_tail:.1f})")


def check_durability(data, path):
    # v3 adds the group-commit fast path: overhead rows sweep a sync-policy
    # grid (policy/max_unsynced_checkpoints/compaction columns + sync wall
    # time), recovery rows carry a "compacted" flag whose replayed record
    # count must shrink, and fuzz rows gain policy cells with sync /
    # compaction / pre-compaction-point accounting.
    require(data.get("schema_version") == 3, path, "schema_version != 3")
    require(data.get("smoke") is False, path,
            "committed artifact is a --smoke run; regenerate full-size")
    # The PR's acceptance bar, re-asserted on the committed artifact: at
    # least 1000 injected crash/torn-write points, all recovered (the
    # binary exits non-zero on any divergence, so an artifact from a failed
    # run never lands).
    require(isinstance(data.get("total_crash_points"), int) and
            data["total_crash_points"] >= 1000, path,
            "total_crash_points must be an int >= 1000")
    check_rows(data, path, {"section"})
    sections = {}
    for row in data["rows"]:
        sections.setdefault(row["section"], []).append(row)
    overhead_keys = {"algorithm", "sink", "policy",
                     "max_unsynced_checkpoints",
                     "compaction_threshold_bytes", "operations",
                     "wall_seconds", "ops_per_sec", "log_records",
                     "log_bytes", "log_syncs", "checkpoints",
                     "log_compactions", "sync_wall_seconds"}
    recovery_keys = {"operations", "compacted", "log_records", "log_bytes",
                     "recover_wall_seconds", "records_per_sec",
                     "checkpoint_seq"}
    fuzz_keys = {"scenario", "algorithm", "facade", "shards", "rebalance",
                 "policy", "crash_points", "boundary_points", "torn_points",
                 "mid_batch_points", "pre_compaction_points", "checkpoints",
                 "syncs", "compactions", "log_records", "recovered_records",
                 "migrations", "objects_verified"}
    for section, keys in (("overhead", overhead_keys),
                          ("recovery", recovery_keys), ("fuzz", fuzz_keys)):
        rows = sections.get(section, [])
        require(rows, path, f"no '{section}' rows")
        for i, row in enumerate(rows):
            missing = keys - row.keys()
            require(not missing, path,
                    f"{section} row {i} missing keys {sorted(missing)}")
    sinks = {r["sink"] for r in sections["overhead"]}
    for sink in ("none", "memory", "file"):
        require(sink in sinks, path, f"overhead sink '{sink}' missing")
    # The policy grid: every logging sink is swept across the strict
    # discipline, two coalescing windows, and a compacting cell; a sync
    # only ever happens at a checkpoint (the bench counts log rewrites
    # separately), and compacting cells must actually compact.
    for sink in ("memory", "file"):
        policies = {r["policy"] for r in sections["overhead"]
                    if r["sink"] == sink}
        for policy in ("sync1", "gc8", "gc32", "gc32+compact"):
            require(policy in policies, path,
                    f"overhead {sink} policy '{policy}' missing")
    for row in sections["overhead"]:
        if row["sink"] == "none":
            continue
        label = f"overhead {row['algorithm']}/{row['sink']}/{row['policy']}"
        require(row["log_syncs"] <= row["checkpoints"], path,
                f"{label}: more syncs than checkpoints")
        window = row["max_unsynced_checkpoints"]
        require(row["log_syncs"] == row["checkpoints"] // window, path,
                f"{label}: sync count does not match coalescing window")
        if row["compaction_threshold_bytes"] > 0:
            require(row["log_compactions"] > 0, path,
                    f"{label}: compaction cell never compacted")
        else:
            require(row["log_compactions"] == 0, path,
                    f"{label}: compactions without a threshold")
    # The headline claim on the committed artifact: coalescing 32
    # checkpoints per fsync buys >= 5x on the file sink, where every saved
    # sync is a real fsync(2).
    file_rows = {r["policy"]: r for r in sections["overhead"]
                 if r["algorithm"] == "checkpointed" and r["sink"] == "file"}
    require(file_rows["gc32"]["ops_per_sec"] >=
            5 * file_rows["sync1"]["ops_per_sec"], path,
            "file-sink gc32 is not >= 5x sync1 (group-commit headline)")
    # Compaction differential: same trace, same final checkpoint, strictly
    # fewer records to replay.
    by_ops = {}
    for row in sections["recovery"]:
        by_ops.setdefault(row["operations"], {})[row["compacted"]] = row
    for operations, pair in by_ops.items():
        require(set(pair) == {True, False}, path,
                f"recovery at {operations} ops missing a compacted or "
                "uncompacted row")
        require(pair[True]["checkpoint_seq"] == pair[False]["checkpoint_seq"],
                path, f"recovery at {operations} ops: compacted log landed "
                "on a different checkpoint")
        require(pair[True]["log_records"] < pair[False]["log_records"], path,
                f"recovery at {operations} ops: compaction did not shrink "
                "the replayed record count")
    facades = {(r["facade"], r["shards"]) for r in sections["fuzz"]}
    require(("sharded", 1) in facades, path, "fuzz sharded K=1 row missing")
    require(("sharded", 4) in facades, path, "fuzz sharded K=4 row missing")
    require(("concurrent", 4) in facades, path,
            "fuzz concurrent K=4 row missing")
    policy_cells = [r for r in sections["fuzz"] if r["policy"] != "sync1"]
    require(policy_cells, path, "no group-commit policy fuzz cells")
    require(any(r["facade"] == "concurrent" for r in policy_cells), path,
            "no concurrent group-commit fuzz cell")
    for row in policy_cells:
        label = f"fuzz policy cell '{row['policy']}'"
        require(row["crash_points"] >= 1000, path,
                f"{label}: needs >= 1000 crash points")
        require(row["syncs"] < row["checkpoints"], path,
                f"{label}: coalescing cell never coalesced")
        if "compact" in row["policy"]:
            require(row["compactions"] > 0, path,
                    f"{label}: compacting cell never compacted")
            require(row["pre_compaction_points"] > 0, path,
                    f"{label}: no cuts landed in retired pre-compaction "
                    "streams")
    for row in sections["fuzz"]:
        require(row["syncs"] <= row["checkpoints"], path,
                f"fuzz {row['scenario']}/{row['policy']}: more syncs than "
                "checkpoints")
    points = sum(r["crash_points"] for r in sections["fuzz"])
    require(points == data["total_crash_points"], path,
            "total_crash_points disagrees with the fuzz rows")


CHECKERS = {
    "BENCH_micro.json": check_micro,
    "BENCH_durability.json": check_durability,
    "BENCH_free_index.json": check_free_index,
    "BENCH_address_space.json": check_address_space,
    "BENCH_scenarios.json": check_scenarios,
    "BENCH_sharded.json": check_sharded,
    "BENCH_concurrent.json": check_concurrent,
}


def main():
    root = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else ".")
    files = sorted(root.glob("BENCH_*.json"))
    if not files:
        print(f"error: no BENCH_*.json found under {root.resolve()}")
        return 1
    failures = 0
    for path in files:
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            print(f"FAIL {path.name}: unreadable or invalid JSON: {error}")
            failures += 1
            continue
        try:
            require(isinstance(data, dict), path, "top level is not an object")
            checker = CHECKERS.get(path.name)
            if checker is None:
                print(f"warn {path.name}: no registered schema, generic "
                      "check only — register it in tools/check_bench_json.py")
            else:
                checker(data, path)
            print(f"ok   {path.name}")
        except AssertionError as error:
            print(f"FAIL {error}")
            failures += 1
    if failures:
        print(f"{failures} of {len(files)} artifacts failed validation")
        return 1
    print(f"all {len(files)} bench artifacts validate")
    return 0


if __name__ == "__main__":
    sys.exit(main())
