#!/usr/bin/env python3
"""Checks that relative links in the repo's markdown files resolve.

Usage: tools/check_markdown_links.py [file-or-dir ...]
Defaults to every tracked *.md in the repo root, docs/, and src/.
External (http/https/mailto) links and pure #anchors are skipped; a
relative link with an anchor is checked against its file part. Exits
non-zero listing every broken link.
"""

import os
import re
import sys

LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def md_files(paths):
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs[:] = [d for d in dirs if not d.startswith(("build", "."))]
                for name in names:
                    if name.endswith(".md"):
                        yield os.path.join(root, name)
        elif path.endswith(".md"):
            yield path


def check(files):
    broken = []
    for md in files:
        with open(md, encoding="utf-8") as handle:
            text = handle.read()
        for match in LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(SKIP_PREFIXES):
                continue
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(md), relative))
            if not os.path.exists(resolved):
                line = text.count("\n", 0, match.start()) + 1
                broken.append(f"{md}:{line}: broken link -> {target}")
    return broken


def main():
    args = sys.argv[1:]
    if not args:
        repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        os.chdir(repo)
        args = [name for name in os.listdir(".") if name.endswith(".md")]
        args += ["docs", "src"]
    files = sorted(set(md_files(args)))
    broken = check(files)
    for problem in broken:
        print(problem)
    print(f"checked {len(files)} markdown files: "
          f"{'FAIL' if broken else 'ok'} ({len(broken)} broken)")
    return 1 if broken else 0


if __name__ == "__main__":
    sys.exit(main())
